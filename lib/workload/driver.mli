(** Generic benchmark driver: runs a transaction mix against the engine
    under the discrete-event simulator and measures throughput, exactly in
    the shape of the paper's §8 experiments.

    A bench models the hardware as a CPU resource with a fixed number of
    cores and (optionally) a disk resource with a fixed number of spindles.
    Engine operations charge virtual CPU/IO time against those resources
    through the cost model, so CPU overhead (SSI read tracking), blocking
    (S2PL, write locks) and abort/retry work all show up in committed
    transactions per simulated second. *)

module E = Ssi_engine.Engine

(** Concurrency-control mode under test — the four series of Figures 4/5. *)
type mode = SI | SSI | SSI_no_ro_opt | S2PL

val mode_name : mode -> string
val all_modes : mode list

val isolation_of_mode : mode -> E.isolation

type spec = {
  name : string;
  weight : float;  (** relative frequency in the mix *)
  read_only : bool;  (** declared READ ONLY at BEGIN *)
  body : Ssi_util.Rng.t -> E.txn -> unit;
  routed : (Ssi_util.Rng.t -> Ssi_replication.Router.ro -> unit) option;
      (** read-fleet form of a read-only body: when the bench configures a
          {!bench.fleet} router, read-only specs carrying one are routed
          through {!Ssi_replication.Router.read_only} (replica or primary,
          per the router's health/staleness state) instead of opening an
          engine transaction.  Ignored without a fleet; [None] keeps the
          spec primary-only. *)
}

type bench = {
  mode : mode;
  certifier : Ssi_core.Certifier.kind;
      (** Which serializability certifier serializable modes run under
          (SSI, SSN or ESSN); ignored by SI and S2PL.  The window metrics
          ([ssi_summarized], [ssi_conflicts], [abort_reasons]) are read
          from the matching [<certifier>.*] namespace. *)
  workers : int;  (** concurrent client sessions *)
  duration : float;  (** measured simulated seconds *)
  warmup : float;  (** simulated seconds discarded before measuring *)
  cpu_cores : int;
  disks : int;  (** 0 disables the disk resource (I/O charged unqueued) *)
  costs : E.costs;
  seed : int;
  max_committed_sxacts : int;
  predlock : Ssi_core.Predlock.config;  (** SIREAD promotion thresholds *)
  next_key_gaps : bool;  (** next-key instead of page index-gap locks *)
  retry : E.retry_policy;  (** client-side retry/backoff policy (§5.4) *)
  chaos : (E.t -> unit) option;
      (** called on the fresh engine before [setup], from inside the
          simulation — the place to attach a replica, install a fault
          injector, and [Sim.spawn] a {!Ssi_fault.Fault.execute} process *)
  trace_capacity : int option;
      (** when set, size both the trace ring and the finished-span table of
          the engine's registry to this many entries (default registry
          sizes otherwise).  Trace exports and the abort explainer need
          capacities well above the workload's event volume, or parents
          and conflict evidence fall out of the bounded tables (the
          [obs.*.dropped] counters say when that happened). *)
  fleet : (E.t -> Ssi_replication.Router.t) option;
      (** called on the fresh engine after [chaos] and before [setup]
          (so attach-mode replicas see the setup WAL): build the read
          fleet and return its router.  Each worker then gets its own
          {!Ssi_replication.Router.session}; specs with a [routed] body
          flow through {!Ssi_replication.Router.read_only}, read/write
          specs through {!Ssi_replication.Router.write} (both under the
          router's policy, which the builder typically seeds with the
          bench retry policy), and read-only specs without a [routed]
          body keep the direct primary path.  [None] (the default)
          leaves the single-engine path byte-identical to previous
          behaviour. *)
}

val default_bench : bench
(** SSI, 4 workers, 5 simulated seconds (1s warmup), 4 cores, no disk,
    in-memory cost model, seed 42, default retry policy, no chaos. *)

type result = {
  committed : int;
  failures : int;  (** serialization failures (including deadlocks) *)
  deadlocks : int;
  sim_seconds : float;
  throughput : float;  (** committed transactions per simulated second *)
  failure_rate : float;  (** failures / (failures + committed) *)
  cpu_busy : float;  (** utilisation of the CPU resource, 0..1 *)
  ssi_summarized : int;  (** committed transactions summarized (§6.2) *)
  ssi_safe_snapshots : int;  (** read-only transactions that got safe snapshots *)
  ssi_conflicts : int;  (** rw-antidependencies flagged *)
  retries : int;  (** attempts retried after a retryable failure *)
  giveups : int;  (** retry loops exhausted (attempts or deadline) *)
  injected_faults : int;  (** transient faults injected into engine ops *)
  attempts_per_commit : float;  (** 1 + retries/committed; 0 if nothing committed *)
  latency_mean : float;
      (** mean client-observed latency (virtual seconds, retries included)
          of transactions committing in the window; [nan] when none *)
  latency_p50 : float;  (** nearest-rank percentiles of the same samples *)
  latency_p95 : float;
  latency_p99 : float;
  abort_reasons : (string * int) list;
      (** serialization-failure breakdown by SSI victim reason,
          descending count, reasons slugified ([ssi.victims.*]) *)
}

val run : setup:(E.t -> unit) -> specs:spec list -> bench -> result
(** Build a fresh engine, run [setup], then drive [bench.workers] workers
    through the weighted mix for the configured duration, retrying
    serialization failures (the middleware retry loop of §5.4). *)

val in_memory_costs : E.costs
(** Cost model of the paper's tmpfs configurations (§8.1, §8.2 in-memory):
    CPU-dominated, tiny per-lock tracking cost, no I/O. *)

val disk_bound_costs : E.costs
(** Cost model of the §8.2 disk-bound configuration: page misses cost disk
    time, commits flush a log. *)
