type t = {
  mutable data : float array;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { data = Array.make 16 0.; n = 0; sum = 0.; sumsq = 0.; lo = infinity; hi = neg_infinity }

let add t x =
  if t.n = Array.length t.data then begin
    let bigger = Array.make (2 * t.n) 0. in
    Array.blit t.data 0 bigger 0 t.n;
    t.data <- bigger
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then nan
  else
    let n = float_of_int t.n in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.) in
    sqrt (Stdlib.max 0. var)

let min_value t = if t.n = 0 then nan else t.lo
let max_value t = if t.n = 0 then nan else t.hi
let values t = Array.sub t.data 0 t.n

let percentile t p =
  if t.n = 0 then nan
  else begin
    let sorted = values t in
    Array.sort compare sorted;
    let p = Stdlib.min 1. (Stdlib.max 0. p) in
    let rank = p *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median t = percentile t 0.5

(* Nearest-rank percentile: the ⌈p·n⌉-th smallest observation (1-indexed),
   computed on a sorted copy.  Unlike {!percentile} it never interpolates,
   so the result is always an observation that actually occurred — the
   right definition for latency reporting (p95 = a real transaction). *)
let percentile_nearest_of a p =
  let n = Array.length a in
  if n = 0 then nan
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let p = Stdlib.min 1. (Stdlib.max 0. p) in
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
  end

let percentile_nearest t p = percentile_nearest_of (values t) p

type histogram = { h_lo : float; h_hi : float; counts : int array; mutable h_n : int }

let histogram ~lo ~hi ~buckets =
  assert (buckets > 0 && hi > lo);
  { h_lo = lo; h_hi = hi; counts = Array.make buckets 0; h_n = 0 }

let hist_add h x =
  let b = Array.length h.counts in
  let i =
    int_of_float (float_of_int b *. ((x -. h.h_lo) /. (h.h_hi -. h.h_lo)))
  in
  let i = if i < 0 then 0 else if i >= b then b - 1 else i in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_n <- h.h_n + 1

let hist_count h = h.h_n
let hist_bucket h i = h.counts.(i)

let hist_render h ~width =
  let b = Array.length h.counts in
  let peak = Array.fold_left Stdlib.max 1 h.counts in
  let step = (h.h_hi -. h.h_lo) /. float_of_int b in
  List.init b (fun i ->
      let lo = h.h_lo +. (float_of_int i *. step) in
      let bar = String.make (h.counts.(i) * width / peak) '#' in
      Printf.sprintf "%10.3f..%-10.3f %6d %s" lo (lo +. step) h.counts.(i) bar)
