type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  buckets : (int, int ref) Hashtbl.t;  (* index -> count, positive values *)
  mutable zero : int;  (* observations <= 0, counted exactly *)
  mutable n : int;
  mutable sum : float;
  mutable lo : float;  (* nan while empty *)
  mutable hi : float;
}

let create ?(accuracy = 0.01) () =
  if not (accuracy > 0. && accuracy < 1.) then
    invalid_arg "Bhist.create: accuracy must be in (0, 1)";
  let gamma = (1. +. accuracy) /. (1. -. accuracy) in
  {
    alpha = accuracy;
    gamma;
    log_gamma = log gamma;
    buckets = Hashtbl.create 64;
    zero = 0;
    n = 0;
    sum = 0.;
    lo = nan;
    hi = nan;
  }

let accuracy t = t.alpha
let gamma t = t.gamma
let count t = t.n
let zero_count t = t.zero
let total t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
let min_value t = t.lo
let max_value t = t.hi

let index t v = int_of_float (Float.ceil (log v /. t.log_gamma))

(* Midpoint estimate for bucket i, i.e. of (γ^(i-1), γ^i]: within
   relative error α of every value the bucket can hold. *)
let estimate t i = 2. *. exp (float_of_int i *. t.log_gamma) /. (t.gamma +. 1.)

let bucket_upper t i = exp (float_of_int i *. t.log_gamma)

let bump buckets i by =
  match Hashtbl.find_opt buckets i with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace buckets i (ref by)

let add t v =
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if t.n = 1 then begin
    t.lo <- v;
    t.hi <- v
  end
  else begin
    if v < t.lo then t.lo <- v;
    if v > t.hi then t.hi <- v
  end;
  if v <= 0. then t.zero <- t.zero + 1 else bump t.buckets (index t v) 1

let buckets t =
  Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  |> List.filter (fun (_, c) -> c > 0)

let bucket_count t = (if t.zero > 0 then 1 else 0) + List.length (buckets t)

let percentile t p =
  if t.n = 0 then nan
  else begin
    let p = Float.max 0. (Float.min 1. p) in
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (p *. float_of_int t.n))) in
    let rank = Stdlib.min rank t.n in
    if rank <= t.zero then Stdlib.min t.lo 0.
    else begin
      let cum = ref t.zero and result = ref t.hi in
      (try
         List.iter
           (fun (i, c) ->
             cum := !cum + c;
             if !cum >= rank then begin
               result := estimate t i;
               raise Exit
             end)
           (buckets t)
       with Exit -> ());
      (* The estimate is already within α of the true value; clamping to
         the exact observed range only ever tightens it. *)
      Stdlib.min t.hi (Stdlib.max t.lo !result)
    end
  end

let copy t =
  let buckets = Hashtbl.create (Stdlib.max 16 (Hashtbl.length t.buckets)) in
  Hashtbl.iter (fun i r -> Hashtbl.replace buckets i (ref !r)) t.buckets;
  { t with buckets }

let same_accuracy op a b =
  if a.alpha <> b.alpha then
    invalid_arg
      (Printf.sprintf "Bhist.%s: accuracy mismatch (%g vs %g)" op a.alpha b.alpha)

let merge a b =
  same_accuracy "merge" a b;
  let r = copy a in
  Hashtbl.iter (fun i c -> bump r.buckets i !c) b.buckets;
  r.zero <- a.zero + b.zero;
  r.n <- a.n + b.n;
  r.sum <- a.sum +. b.sum;
  (if b.n > 0 then
     if a.n = 0 then begin
       r.lo <- b.lo;
       r.hi <- b.hi
     end
     else begin
       r.lo <- Stdlib.min a.lo b.lo;
       r.hi <- Stdlib.max a.hi b.hi
     end);
  r

let diff ~cur ~base =
  same_accuracy "diff" cur base;
  let r = create ~accuracy:cur.alpha () in
  let under i =
    invalid_arg (Printf.sprintf "Bhist.diff: base exceeds cur in bucket %d" i)
  in
  Hashtbl.iter
    (fun i c ->
      let b = match Hashtbl.find_opt base.buckets i with Some r -> !r | None -> 0 in
      if b > !c then under i;
      if !c - b > 0 then Hashtbl.replace r.buckets i (ref (!c - b)))
    cur.buckets;
  Hashtbl.iter
    (fun i c -> if !c > 0 && not (Hashtbl.mem cur.buckets i) then under i)
    base.buckets;
  if base.zero > cur.zero then under 0;
  r.zero <- cur.zero - base.zero;
  r.n <- cur.n - base.n;
  if r.n < 0 then invalid_arg "Bhist.diff: base has more observations than cur";
  r.sum <- cur.sum -. base.sum;
  (* Window extremes are not recoverable from cumulative state: answer
     bucket-resolution bounds (exact 0/cur.lo for the zero bucket). *)
  if r.n > 0 then begin
    let occupied = buckets r in
    let lo =
      if r.zero > 0 then Stdlib.min cur.lo 0.
      else match occupied with (i, _) :: _ -> estimate r i | [] -> cur.lo
    in
    let hi =
      match List.rev occupied with
      | (i, _) :: _ -> Stdlib.min cur.hi (bucket_upper r i)
      | [] -> Stdlib.min cur.hi 0.
    in
    r.lo <- lo;
    r.hi <- Stdlib.max lo hi
  end;
  r
