(** Bounded log-bucketed histogram (DDSketch-style).

    A mergeable quantile sketch whose memory is O(occupied buckets),
    independent of how many observations it has absorbed — the
    replacement for full-sample accumulators in long soaks.  Positive
    values land in geometric buckets [(γ^(i-1), γ^i]] with
    [γ = (1+α)/(1−α)] for a configured relative accuracy [α]; any
    quantile of the positive observations is answered within relative
    error ≤ [α] (each bucket's midpoint estimate [2γ^i/(γ+1)] is within
    [α] of every value the bucket can hold).  For values spanning
    [[vmin, vmax]] (positive) the sketch occupies at most
    [⌈log(vmax/vmin)/log γ⌉ + 1] buckets — e.g. ≈ 2100 buckets across
    eighteen decades at [α = 0.01] — regardless of sample count.

    Count, sum (hence mean), minimum and maximum are tracked exactly.
    Values ≤ 0 are counted exactly in a dedicated zero bucket; the
    sketch is intended for non-negative measurements (latencies, sizes),
    so quantiles falling in the zero bucket answer the exact minimum
    (0 for all-zero data) rather than a bucket estimate.

    Two sketches with the same [α] {!merge} by bucket-wise addition —
    associative and commutative on counts and quantiles — which is what
    lets per-engine/replica/shard histograms aggregate into fleet-wide
    ones.  {!diff} subtracts an earlier snapshot of the {e same} stream,
    yielding the window's increment (the scrape layer's per-window
    histogram deltas). *)

type t

val create : ?accuracy:float -> unit -> t
(** Fresh empty sketch.  [accuracy] is the relative quantile error bound
    [α], in (0, 1); default [0.01] (1%). *)

val accuracy : t -> float
val gamma : t -> float

val add : t -> float -> unit
(** Record one observation.  O(1). *)

val count : t -> int
val zero_count : t -> int
(** Observations ≤ 0 (held exactly in the zero bucket). *)

val total : t -> float
(** Exact sum of all observations. *)

val mean : t -> float
(** Exact mean; [nan] when empty. *)

val min_value : t -> float
(** Smallest observation; [nan] when empty.  Exact, except on a {!diff}
    result where it is a bucket-resolution estimate for the window. *)

val max_value : t -> float
(** Largest observation; [nan] when empty (same caveat as
    {!min_value}). *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [[0,1]]: the value at nearest rank
    [⌈p·n⌉], within relative error ≤ {!accuracy} for positive data and
    clamped into [[min_value, max_value]]; [nan] when empty. *)

val bucket_count : t -> int
(** Occupied buckets (including the zero bucket when non-empty) — the
    memory-footprint measure. *)

val buckets : t -> (int * int) list
(** Occupied positive buckets as [(index, count)], ascending index.
    Bucket [i] covers [(γ^(i-1), γ^i]]. *)

val bucket_upper : t -> int -> float
(** Upper bound [γ^i] of bucket [i] — the OpenMetrics [le] label. *)

val copy : t -> t

val merge : t -> t -> t
(** Bucket-wise sum of two sketches (fresh result; arguments untouched).
    Raises [Invalid_argument] when accuracies differ. *)

val diff : cur:t -> base:t -> t
(** The increment from [base] to [cur], where [base] is an earlier
    {!copy} of the same stream as [cur] (every bucket of [base] must be
    ≤ its counterpart in [cur], else [Invalid_argument]).  Min/max of
    the result are bucket-resolution estimates — the true window
    extremes are not recoverable from cumulative state. *)
