(** Streaming and batch statistics used by the experiment harness. *)

type t
(** A mutable accumulator of float observations. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
val total : t -> float

val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val stddev : t -> float
(** Sample standard deviation; [nan] when fewer than two observations. *)

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,1\]], by linear interpolation over the
    sorted observations; [nan] when empty.  Retains all observations, so it
    is intended for bounded experiment outputs, not unbounded streams. *)

val median : t -> float

val percentile_nearest : t -> float -> float
(** Nearest-rank percentile: the ⌈p·n⌉-th smallest observation on a sorted
    copy, never interpolated; [nan] when empty.  Used for the driver
    report's p50/p95/p99 latency columns, where the answer should be a
    latency some transaction actually experienced. *)

val percentile_nearest_of : float array -> float -> float
(** {!percentile_nearest} over a plain observation array (e.g. a windowed
    slice of a histogram's samples). *)

val values : t -> float array
(** A copy of all recorded observations, in insertion order. *)

type histogram
(** Fixed-bucket histogram over [\[lo, hi)]. *)

val histogram : lo:float -> hi:float -> buckets:int -> histogram
val hist_add : histogram -> float -> unit
val hist_count : histogram -> int
val hist_bucket : histogram -> int -> int
(** Count in bucket [i]; bucket 0 also holds underflow and the last bucket
    holds overflow. *)

val hist_render : histogram -> width:int -> string list
(** ASCII rendering, one line per bucket: range, count, bar. *)
