(* Streaming replication and consistent backups (paper §7.2, §4.3).

     dune exec examples/replication_backup.exe

   A primary runs the batch-processing workload while a replica applies
   its WAL stream.  Reading the replica at an arbitrary applied position
   gives only snapshot isolation — the REPORT anomaly of Figure 2 can
   appear.  Reading at the safe-snapshot points marked in the stream is
   serializable.  Finally, a pg_dump-style backup runs on the primary as a
   DEFERRABLE transaction: it waits for a safe snapshot, then scans every
   table with no SSI overhead and no risk of being aborted. *)

open Ssi_storage
module E = Ssi_engine.Engine
module R = Ssi_replication.Replica
module Sim = Ssi_sim.Sim
module Rng = Ssi_util.Rng

let sim_config =
  (* Non-zero per-operation costs make transactions take virtual time, so
     the simulator actually interleaves them. *)
  {
    E.default_config with
    E.costs =
      { E.zero_costs with E.cpu_per_op = 100e-6; cpu_per_tuple = 5e-6; io_commit = 50e-6 };
  }

let vi i = Value.Int i

let setup db =
  E.create_table db ~name:"control" ~cols:[ "id"; "batch" ] ~key:"id";
  E.create_table db ~name:"receipts" ~cols:[ "rid"; "batch"; "amount" ] ~key:"rid";
  E.create_index db ~table:"receipts" ~name:"receipts_batch" ~column:"batch" ();
  E.with_txn db (fun t -> E.insert t ~table:"control" [| vi 0; vi 1 |])

let replica_batch_total rt x =
  List.fold_left
    (fun acc row -> acc + Value.as_int row.(2))
    0
    (R.scan rt ~table:"receipts" ~filter:(fun row -> Value.as_int row.(1) = x) ())

let () =
  let db = E.create ~scheduler:Sim.scheduler ~config:sim_config () in
  let replica = ref None in
  let anomalies_applied = ref 0 and anomalies_safe = ref 0 in
  let reports_applied = ref 0 and reports_safe = ref 0 in
  let backup_rows = ref 0 in
  let seen_applied : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let seen_safe : (int, int) Hashtbl.t = Hashtbl.create 16 in
  ignore
    (Sim.run (fun () ->
         setup db;
         replica := Some (R.attach db);
         let r = Option.get !replica in
         let stop = ref false in
         let rid = ref 0 in
         (* Primary workload: receipts and batch closes. *)
         for i = 1 to 3 do
           let rng = Rng.make (10 + i) in
           Sim.spawn (fun () ->
               while not !stop do
                 (try
                    E.retry db (fun t ->
                        let x =
                          match E.read t ~table:"control" ~key:(vi 0) with
                          | Some row -> Value.as_int row.(1)
                          | None -> assert false
                        in
                        (* Client think time: the anomaly window of Figure 2. *)
                        Sim.delay 0.005;
                        incr rid;
                        E.insert t ~table:"receipts"
                          [| vi ((i * 100000) + !rid); vi x; vi (1 + Rng.int rng 50) |])
                  with E.Serialization_failure _ -> ());
                 Sim.delay 0.002
               done)
         done;
         Sim.spawn (fun () ->
             for _ = 1 to 25 do
               (try
                  E.retry db (fun t ->
                      ignore
                        (E.update t ~table:"control" ~key:(vi 0) ~f:(fun row ->
                             [| row.(0); vi (Value.as_int row.(1) + 1) |])))
                with E.Serialization_failure _ -> ());
               Sim.delay 0.012
             done;
             stop := true);
         (* Replica REPORT reader, in both modes. *)
         let report mode seen anomalies reports =
           let rt = R.begin_read r mode in
           match R.read rt ~table:"control" ~key:(vi 0) with
           | None -> ()
           | Some row ->
               let x = Value.as_int row.(1) - 1 in
               let total = replica_batch_total rt x in
               incr reports;
               (match Hashtbl.find_opt seen x with
               | None -> Hashtbl.add seen x total
               | Some t0 -> if t0 <> total then incr anomalies)
         in
         Sim.spawn (fun () ->
             while not !stop do
               report `Latest_applied seen_applied anomalies_applied reports_applied;
               report `Latest_safe seen_safe anomalies_safe reports_safe;
               Sim.delay 0.003
             done);
         (* pg_dump-style DEFERRABLE backup on the primary. *)
         Sim.spawn (fun () ->
             Sim.delay 0.05;
             E.with_txn ~read_only:true ~deferrable:true db (fun t ->
                 backup_rows :=
                   List.length (E.seq_scan t ~table:"receipts" ())
                   + List.length (E.seq_scan t ~table:"control" ());
                 assert (E.snapshot_is_safe t)))));
  Format.printf "replica REPORT at latest applied position: %d reports, %d totals changed@."
    !reports_applied !anomalies_applied;
  Format.printf "replica REPORT at safe snapshots:          %d reports, %d totals changed@."
    !reports_safe !anomalies_safe;
  Format.printf "deferrable backup captured %d rows on a safe snapshot@." !backup_rows;
  if !anomalies_safe > 0 then exit 1
