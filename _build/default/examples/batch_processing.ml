(* The paper's Figure 2: the batch-processing anomaly, and how SSI,
   safe snapshots and DEFERRABLE transactions deal with it.

     dune exec examples/batch_processing.exe

   Three transaction types run concurrently:
     NEW-RECEIPT  — insert a receipt tagged with the current batch number
     CLOSE-BATCH  — increment the batch number
     REPORT       — read the batch number, then total the previous batch

   Invariant: once a REPORT has shown a batch's total, that total never
   changes.  Under snapshot isolation the Figure 2 interleaving breaks it;
   under SERIALIZABLE it cannot.  The REPORT is also run as a DEFERRABLE
   transaction, which waits for a safe snapshot and then runs with no SSI
   overhead or abort risk (§4.3). *)

open Ssi_storage
module E = Ssi_engine.Engine
module Sim = Ssi_sim.Sim
module Rng = Ssi_util.Rng

let sim_config =
  (* Non-zero per-operation costs make transactions take virtual time, so
     the simulator actually interleaves them. *)
  {
    E.default_config with
    E.costs =
      { E.zero_costs with E.cpu_per_op = 100e-6; cpu_per_tuple = 5e-6; io_commit = 50e-6 };
  }

let vi i = Value.Int i

let setup db =
  E.create_table db ~name:"control" ~cols:[ "id"; "batch" ] ~key:"id";
  E.create_table db ~name:"receipts" ~cols:[ "rid"; "batch"; "amount" ] ~key:"rid";
  E.create_index db ~table:"receipts" ~name:"receipts_batch" ~column:"batch" ();
  E.with_txn db (fun t -> E.insert t ~table:"control" [| vi 0; vi 1 |])

let current_batch t =
  match E.read t ~table:"control" ~key:(vi 0) with
  | Some row -> Value.as_int row.(1)
  | None -> assert false

let batch_total t x =
  List.fold_left
    (fun acc row -> acc + Value.as_int row.(2))
    0
    (E.index_scan t ~table:"receipts" ~index:"receipts_batch" ~lo:(vi x) ~hi:(vi x))

let run ~isolation ~deferrable_reports =
  let db = E.create ~scheduler:Sim.scheduler ~config:sim_config () in
  let rid = ref 0 in
  let reported : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let broken = ref 0 in
  let reports = ref 0 in
  ignore
    (Sim.run (fun () ->
         setup db;
         let stop = ref false in
         (* NEW-RECEIPT workers. *)
         for i = 1 to 3 do
           let rng = Rng.make i in
           Sim.spawn (fun () ->
               while not !stop do
                 (try
                    E.retry ~isolation db (fun t ->
                        let x = current_batch t in
                        (* Client think time between reading the batch number
                           and inserting the receipt: the window in which
                           Figure 2's CLOSE-BATCH and REPORT slip in. *)
                        Sim.delay 0.005;
                        incr rid;
                        E.insert t ~table:"receipts"
                          [| vi !rid; vi x; vi (1 + Rng.int rng 100) |])
                  with E.Serialization_failure _ -> ());
                 Sim.delay 0.002
               done)
         done;
         (* CLOSE-BATCH, once per tick. *)
         Sim.spawn (fun () ->
             for _ = 1 to 30 do
               (try
                  E.retry ~isolation db (fun t ->
                      ignore
                        (E.update t ~table:"control" ~key:(vi 0) ~f:(fun row ->
                             [| row.(0); vi (Value.as_int row.(1) + 1) |])))
                with E.Serialization_failure _ -> ());
               Sim.delay 0.01
             done;
             stop := true);
         (* REPORT: remembers each batch total the first time it is shown
            and flags any batch whose total later changes. *)
         Sim.spawn (fun () ->
             while not !stop do
               (try
                  E.retry ~isolation ~read_only:true
                    ~deferrable:(deferrable_reports && isolation = E.Serializable) db
                    (fun t ->
                      let x = current_batch t in
                      let total = batch_total t (x - 1) in
                      incr reports;
                      match Hashtbl.find_opt reported (x - 1) with
                      | None -> Hashtbl.add reported (x - 1) total
                      | Some seen -> if seen <> total then incr broken)
                  with E.Serialization_failure _ -> ());
               Sim.delay 0.004
             done)));
  (!reports, !broken)

let () =
  Format.printf "Batch processing (Figure 2): 3 receipt writers, 30 batch closes@.";
  let reports, broken = run ~isolation:E.Repeatable_read ~deferrable_reports:false in
  Format.printf "snapshot isolation:       %3d reports, %d reported totals changed@."
    reports broken;
  let reports, broken = run ~isolation:E.Serializable ~deferrable_reports:false in
  Format.printf "SSI serializable:         %3d reports, %d reported totals changed@."
    reports broken;
  let reports, broken = run ~isolation:E.Serializable ~deferrable_reports:true in
  Format.printf "SSI + DEFERRABLE reports: %3d reports, %d reported totals changed@."
    reports broken
