(* Ad-hoc SQL and serializability (paper §2.2).

     dune exec examples/ad_hoc_queries.exe

   The paper's central argument for serializability in the database is
   that static analysis of a workload cannot cover ad-hoc queries — an
   administrator at a psql prompt can create anomalies no one planned
   for.  This example replays that argument with a court-records schema
   (the paper's motivating deployment): the invariant is that every case
   with an outstanding warrant is assigned to an ACTIVE officer.

   - The application transaction issues a warrant for a case, after
     checking that its officer is active.
   - An ad-hoc administrative session retires an officer, after checking
     that none of their cases has a warrant.

   Each transaction is correct in isolation; interleaved under snapshot
   isolation they exhibit write skew and break the invariant.  Under
   SERIALIZABLE (the default), SSI aborts one of them. *)

module E = Ssi_engine.Engine
module Sql = Ssi_sql.Session
open Ssi_storage

let exec s sql = List.iter (fun _ -> ()) (Sql.exec_sql s sql)

let query_int s sql =
  match Sql.exec_sql s sql with
  | [ Sql.Rows { rows = [ [| Value.Int n |] ]; _ } ] -> n
  | _ -> failwith "expected a single integer"

let setup db =
  let s = Sql.create db in
  exec s "CREATE TABLE officers (name, active, PRIMARY KEY (name))";
  exec s "CREATE TABLE cases (id, warrant, officer, PRIMARY KEY (id))";
  exec s "CREATE INDEX cases_officer ON cases (officer)";
  exec s "INSERT INTO officers VALUES ('smith', true), ('jones', true)";
  exec s
    "INSERT INTO cases VALUES (1, true, 'smith'), (2, false, 'jones'), (3, false, 'jones')";
  s

(* The invariant: warrants are always handled by an active officer. *)
let violations admin =
  (* A warrant case whose officer is inactive.  (No joins in our SQL
     subset: check per officer.) *)
  let inactive name =
    query_int admin
      (Printf.sprintf "SELECT COUNT(*) FROM officers WHERE name = '%s' AND active = false" name)
    = 1
  in
  List.length
    (List.filter
       (fun name ->
         inactive name
         && query_int admin
              (Printf.sprintf
                 "SELECT COUNT(*) FROM cases WHERE officer = '%s' AND warrant = true" name)
            > 0)
       [ "smith"; "jones" ])

let run level =
  let db = E.create () in
  let admin = setup db in
  let app = Sql.create db in
  let adhoc = Sql.create db in
  let step s stmts = try exec s stmts; true with Sql.Sql_error _ -> false in
  ignore (step app (Printf.sprintf "BEGIN ISOLATION LEVEL %s" level));
  ignore (step adhoc (Printf.sprintf "BEGIN ISOLATION LEVEL %s" level));
  (* Application: issue a warrant for case 2, having checked that its
     officer (jones) is active. *)
  let app_ok =
    query_int app "SELECT COUNT(*) FROM officers WHERE name = 'jones' AND active = true" = 1
    && step app "UPDATE cases SET warrant = true WHERE id = 2"
  in
  (* Ad hoc: retire jones, having checked they hold no warrants. *)
  let adhoc_ok =
    query_int adhoc "SELECT COUNT(*) FROM cases WHERE officer = 'jones' AND warrant = true" = 0
    && step adhoc "UPDATE officers SET active = false WHERE name = 'jones'"
  in
  let c1 = app_ok && step app "COMMIT" in
  let c2 = adhoc_ok && step adhoc "COMMIT" in
  (c1, c2, violations admin)

let () =
  Format.printf "Ad-hoc queries vs. serializability (paper §2.2)@.";
  let c1, c2, v = run "REPEATABLE READ" in
  Format.printf "  snapshot isolation: app %s, ad-hoc %s -> %d invariant violation(s)%s@."
    (if c1 then "committed" else "failed")
    (if c2 then "committed" else "failed")
    v
    (if v > 0 then "  <- warrant held by a retired officer" else "");
  let c1, c2, v = run "SERIALIZABLE" in
  Format.printf "  SSI serializable:   app %s, ad-hoc %s -> %d invariant violation(s)@."
    (if c1 then "committed" else "failed")
    (if c2 then "committed" else "failed")
    v;
  if v > 0 then exit 1
