examples/quickstart.ml: Array Format List Ssi_engine Ssi_storage Value
