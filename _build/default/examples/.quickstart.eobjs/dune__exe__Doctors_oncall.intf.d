examples/doctors_oncall.mli:
