examples/ad_hoc_queries.mli:
