examples/quickstart.mli:
