examples/replication_backup.mli:
