examples/doctors_oncall.ml: Array Format List Ssi_engine Ssi_sim Ssi_storage Ssi_util Value
