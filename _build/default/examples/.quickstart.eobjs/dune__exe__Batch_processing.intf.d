examples/batch_processing.mli:
