examples/ad_hoc_queries.ml: Format List Printf Ssi_engine Ssi_sql Ssi_storage Value
