examples/batch_processing.ml: Array Format Hashtbl List Ssi_engine Ssi_sim Ssi_storage Ssi_util Value
