examples/replication_backup.ml: Array Format Hashtbl List Option Ssi_engine Ssi_replication Ssi_sim Ssi_storage Ssi_util Value
