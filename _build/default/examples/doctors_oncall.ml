(* The paper's Figure 1: write skew on a hospital on-call roster.

     dune exec examples/doctors_oncall.exe

   A hospital requires at least one doctor on call.  Each doctor's
   "go off call" transaction checks the count first — correct in
   isolation, but under snapshot isolation two concurrent runs can both
   pass the check and leave nobody on call.  This example runs many
   concurrent off-call/on-call requests under the cooperative simulator,
   first at snapshot isolation and then at SERIALIZABLE, and audits the
   invariant continuously. *)

open Ssi_storage
module E = Ssi_engine.Engine
module Sim = Ssi_sim.Sim
module Rng = Ssi_util.Rng

let sim_config =
  (* Non-zero per-operation costs make transactions take virtual time, so
     the simulator actually interleaves them. *)
  {
    E.default_config with
    E.costs =
      { E.zero_costs with E.cpu_per_op = 100e-6; cpu_per_tuple = 5e-6; io_commit = 50e-6 };
  }

let doctors = [ "alice"; "bob"; "carol"; "dave"; "erin" ]

let setup db =
  E.create_table db ~name:"doctors" ~cols:[ "name"; "oncall" ] ~key:"name";
  E.with_txn db (fun t ->
      List.iter
        (fun d -> E.insert t ~table:"doctors" [| Value.Str d; Value.Bool true |])
        doctors)

let oncall_count t =
  List.length (E.seq_scan t ~table:"doctors" ~filter:(fun row -> Value.as_bool row.(1)) ())

let set_oncall t who flag =
  ignore
    (E.update t ~table:"doctors" ~key:(Value.Str who) ~f:(fun row ->
         [| row.(0); Value.Bool flag |]))

(* The Figure 1 transaction: go off call only if someone else remains. *)
let go_off_call t who = if oncall_count t >= 2 then set_oncall t who false

let run isolation =
  let db = E.create ~scheduler:Sim.scheduler ~config:sim_config () in
  let violations = ref 0 in
  let checks = ref 0 in
  ignore
    (Sim.run (fun () ->
         setup db;
         (* Each doctor repeatedly goes off call (if safe) and back on. *)
         List.iteri
           (fun i who ->
             let rng = Rng.make i in
             Sim.spawn (fun () ->
                 for _ = 1 to 40 do
                   (try
                      E.retry ~isolation db (fun t ->
                          go_off_call t who;
                          ignore (Rng.bool rng))
                    with E.Serialization_failure _ -> ());
                   Sim.delay 0.001;
                   E.retry ~isolation db (fun t -> set_oncall t who true);
                   Sim.delay 0.001
                 done))
           doctors;
         (* A continuous auditor: the invariant must hold in every
            committed state. *)
         Sim.spawn (fun () ->
             for _ = 1 to 200 do
               E.with_txn ~isolation ~read_only:(isolation = E.Serializable) db (fun t ->
                   incr checks;
                   if oncall_count t < 1 then incr violations);
               Sim.delay 0.002
             done)));
  (!checks, !violations)

let () =
  Format.printf "Doctors on call (Figure 1), 5 doctors, 40 rounds each@.";
  let checks, violations = run E.Repeatable_read in
  Format.printf "snapshot isolation: %d audits, %d invariant violations@." checks violations;
  let checks, violations = run E.Serializable in
  Format.printf "SSI serializable:   %d audits, %d invariant violations@." checks violations;
  if violations > 0 then exit 1
