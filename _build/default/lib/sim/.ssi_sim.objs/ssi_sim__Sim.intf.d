lib/sim/sim.mli: Ssi_util
