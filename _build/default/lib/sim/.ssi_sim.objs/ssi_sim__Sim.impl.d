lib/sim/sim.ml: Effect Hashtbl Pqueue Printf Ssi_util Waitq
