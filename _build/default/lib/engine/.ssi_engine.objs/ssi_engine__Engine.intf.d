lib/engine/engine.mli: Format Heap Schema Ssi_core Ssi_storage Ssi_util Value
