lib/engine/engine.ml: Array Format Hashtbl Heap List Option Printf Schema Seq Ssi_btree Ssi_core Ssi_lockmgr Ssi_mvcc Ssi_storage Ssi_util Value Waitq
