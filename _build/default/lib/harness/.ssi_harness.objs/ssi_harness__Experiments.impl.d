lib/harness/experiments.ml: Driver Hashtbl List Printf Rng Rubis Sibench Ssi_core Ssi_engine Ssi_sim Ssi_storage Ssi_util Ssi_workload Stats Tablefmt Tpcc
