lib/harness/experiments.mli: Driver Ssi_util Ssi_workload
