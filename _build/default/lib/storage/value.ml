type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let rank = function Null -> 0 | Bool _ -> 1 | Int _ | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | Str _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  (* Int and Float hash through the same float representation so that the
     hash is compatible with [equal], which compares them numerically. *)
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

let as_int = function Int i -> i | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> invalid_arg ("Value.as_float: " ^ to_string v)

let as_string = function Str s -> s | v -> invalid_arg ("Value.as_string: " ^ to_string v)
let as_bool = function Bool b -> b | v -> invalid_arg ("Value.as_bool: " ^ to_string v)
