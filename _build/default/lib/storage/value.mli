(** SQL-ish dynamically-typed values stored in tuples and index keys. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val compare : t -> t -> int
(** Total order: [Null < Bool < Int/Float (numeric order) < Str].  Integers
    and floats compare numerically with each other, as in SQL. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Accessors raising [Invalid_argument] on a type mismatch. *)

val as_int : t -> int
val as_float : t -> float
(** [as_float] also accepts [Int]. *)

val as_string : t -> string
val as_bool : t -> bool
