type t = { name : string; columns : string array; key_index : int }

let make ~name ~cols ~key =
  let columns = Array.of_list cols in
  let seen = Hashtbl.create (Array.length columns) in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c then invalid_arg ("Schema.make: duplicate column " ^ c);
      Hashtbl.add seen c ())
    columns;
  let key_index =
    let found = ref (-1) in
    Array.iteri (fun i c -> if c = key then found := i) columns;
    if !found < 0 then invalid_arg ("Schema.make: unknown key column " ^ key);
    !found
  in
  { name; columns; key_index }

let name t = t.name
let columns t = t.columns
let arity t = Array.length t.columns
let key_index t = t.key_index

let column_index t col =
  let found = ref (-1) in
  Array.iteri (fun i c -> if c = col then found := i) t.columns;
  if !found < 0 then raise Not_found;
  !found

let key_of_row t row = row.(t.key_index)

let check_row t row =
  if Array.length row <> arity t then
    invalid_arg
      (Printf.sprintf "Schema.check_row: table %s expects %d columns, got %d" t.name
         (arity t) (Array.length row))

let pp ppf t =
  Format.fprintf ppf "%s(%s)" t.name (String.concat ", " (Array.to_list t.columns))
