(** Table schemas: a named, ordered set of columns with a primary-key
    column.  Rows are [Value.t array]s positionally matching the columns. *)

type t

val make : name:string -> cols:string list -> key:string -> t
(** [make ~name ~cols ~key] builds a schema.  [key] must be one of [cols].
    Raises [Invalid_argument] on duplicate or unknown column names. *)

val name : t -> string
val columns : t -> string array
val arity : t -> int
val key_index : t -> int

val column_index : t -> string -> int
(** Position of a column; raises [Not_found] for unknown names. *)

val key_of_row : t -> Value.t array -> Value.t
(** Extract the primary-key value of a row. *)

val check_row : t -> Value.t array -> unit
(** Raises [Invalid_argument] when the row arity does not match. *)

val pp : Format.formatter -> t -> unit
