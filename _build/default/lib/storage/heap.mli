(** Versioned heap relations, modelled on the PostgreSQL heap.

    Every logical row is a chain of tuple versions ordered newest-first.
    Each version carries the transaction id that created it ([xmin]) and,
    once deleted or superseded, the transaction id that did so ([xmax]) —
    exactly the data PostgreSQL's visibility checks and SSI's
    write-before-read conflict detection consume.  Versions live at physical
    locations ([tid]s: page number and slot), which is what page-granularity
    SIREAD locks name.

    This module stores versions and chains only; it knows nothing about
    visibility or isolation — that logic lives in [Ssi_mvcc] and the
    engine. *)

type xid = int
(** Transaction id; [0] means "none" (e.g. an unset [xmax]). *)

val invalid_xid : xid

type tid = { page : int; slot : int }
(** Physical tuple location. *)

val pp_tid : Format.formatter -> tid -> unit

type tuple = private {
  mutable tid : tid;  (** mutable so table rewrites (DDL) can relocate *)
  key : Value.t;
  row : Value.t array;
  xmin : xid;
  mutable xmax : xid;
  mutable prev : tuple option;  (** next older version of the same row *)
}

type t
(** A heap relation. *)

val create : ?tuples_per_page:int -> Schema.t -> t
(** [tuples_per_page] (default 64) controls the tid→page mapping. *)

val schema : t -> Schema.t
val rel_name : t -> string

val generation : t -> int
(** Bumped by {!rewrite}; lets lock managers notice that physical locations
    changed and page/tuple locks must be promoted (paper §5.2.1). *)

val insert_version : t -> key:Value.t -> row:Value.t array -> xmin:xid -> tuple
(** Append a new version for [key], linking the existing newest version (if
    any) as its predecessor and installing it as chain head.  The caller is
    responsible for having set the predecessor's [xmax]. *)

val set_xmax : tuple -> xid -> unit
(** Record the deleter/updater of a version ([0] clears it, e.g. on
    rollback). *)

val head : t -> Value.t -> tuple option
(** Newest version of a row, committed or not. *)

val unlink_head : t -> Value.t -> unit
(** Roll back an insertion: remove the newest version of [key], restoring
    its predecessor (if any) as head.  Raises [Invalid_argument] when the
    key has no versions. *)

val versions : tuple -> tuple Seq.t
(** The version chain from this version towards older ones (inclusive). *)

val iter_heads : t -> (tuple -> unit) -> unit
(** Iterate over the newest version of every row, in unspecified order. *)

val fold_heads : t -> init:'a -> f:('a -> tuple -> 'a) -> 'a

val cardinal : t -> int
(** Number of live chains (rows that have at least one version). *)

val npages : t -> int
(** Number of heap pages allocated so far (at least 1). *)

val page_of_tid : tid -> int

val rewrite : t -> unit
(** Simulate a table-rewriting DDL statement (CLUSTER / ALTER TABLE):
    relocates every version to fresh tids and bumps {!generation}. *)

val prune : t -> live:(tuple -> bool) -> unit
(** Vacuum-lite: drop chain suffixes of versions for which [live] is false.
    Chain heads are never dropped; only older versions are. *)
