lib/storage/value.ml: Bool Float Format Hashtbl Int String
