lib/storage/heap.mli: Format Schema Seq Value
