lib/storage/value.mli: Format
