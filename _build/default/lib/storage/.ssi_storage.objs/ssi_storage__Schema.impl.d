lib/storage/schema.ml: Array Format Hashtbl Printf String
