lib/storage/heap.ml: Format Hashtbl Schema Seq Value
