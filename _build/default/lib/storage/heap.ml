type xid = int

let invalid_xid = 0

type tid = { page : int; slot : int }

let pp_tid ppf t = Format.fprintf ppf "(%d,%d)" t.page t.slot

type tuple = {
  mutable tid : tid;
  key : Value.t;
  row : Value.t array;
  xmin : xid;
  mutable xmax : xid;
  mutable prev : tuple option;
}

module Key_table = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  schema : Schema.t;
  tuples_per_page : int;
  mutable next_slot : int;
  heads : tuple Key_table.t;
  mutable gen : int;
}

let create ?(tuples_per_page = 64) schema =
  assert (tuples_per_page > 0);
  { schema; tuples_per_page; next_slot = 0; heads = Key_table.create 64; gen = 0 }

let schema t = t.schema
let rel_name t = Schema.name t.schema
let generation t = t.gen

let fresh_tid t =
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  { page = slot / t.tuples_per_page; slot = slot mod t.tuples_per_page }

let insert_version t ~key ~row ~xmin =
  Schema.check_row t.schema row;
  let prev = Key_table.find_opt t.heads key in
  let tuple = { tid = fresh_tid t; key; row; xmin; xmax = invalid_xid; prev } in
  Key_table.replace t.heads key tuple;
  tuple

let set_xmax tuple xid = tuple.xmax <- xid

let head t key = Key_table.find_opt t.heads key

let unlink_head t key =
  match Key_table.find_opt t.heads key with
  | None -> invalid_arg "Heap.unlink_head: no versions for key"
  | Some tuple -> (
      match tuple.prev with
      | None -> Key_table.remove t.heads key
      | Some older -> Key_table.replace t.heads key older)

let versions tuple =
  let rec seq v () =
    match v with
    | None -> Seq.Nil
    | Some tup -> Seq.Cons (tup, seq tup.prev)
  in
  seq (Some tuple)

let iter_heads t f = Key_table.iter (fun _ tuple -> f tuple) t.heads
let fold_heads t ~init ~f = Key_table.fold (fun _ tuple acc -> f acc tuple) t.heads init
let cardinal t = Key_table.length t.heads

let npages t = 1 + ((max 0 (t.next_slot - 1)) / t.tuples_per_page)

let page_of_tid tid = tid.page

let rewrite t =
  t.gen <- t.gen + 1;
  t.next_slot <- 0;
  (* Relocate every version of every chain to a fresh location, as a
     rewriting DDL statement does.  Iteration order is unspecified, which is
     fine: only the fact that locations change matters. *)
  Key_table.iter
    (fun _ head_tuple -> Seq.iter (fun v -> v.tid <- fresh_tid t) (versions head_tuple))
    t.heads

let prune t ~live =
  Key_table.iter
    (fun _ head_tuple ->
      let rec cut v =
        match v.prev with
        | None -> ()
        | Some older -> if live older then cut older else v.prev <- None
      in
      cut head_tuple)
    t.heads
