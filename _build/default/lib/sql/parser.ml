open Ssi_storage
open Ast

exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect_symbol st s =
  match next st with
  | Lexer.Symbol s' when s' = s -> ()
  | t -> fail "expected %S, got %a" s (fun () -> Format.asprintf "%a" Lexer.pp_token) t

let expect_kw st kw =
  match next st with
  | Lexer.Ident k when k = kw -> ()
  | t -> fail "expected %s, got %s" (String.uppercase_ascii kw) (Format.asprintf "%a" Lexer.pp_token t)

let accept_kw st kw =
  match peek st with
  | Lexer.Ident k when k = kw ->
      advance st;
      true
  | _ -> false

let accept_symbol st s =
  match peek st with
  | Lexer.Symbol s' when s' = s ->
      advance st;
      true
  | _ -> false

let ident st =
  match next st with
  | Lexer.Ident s -> s
  | t -> fail "expected identifier, got %s" (Format.asprintf "%a" Lexer.pp_token t)

let string_lit st =
  match next st with
  | Lexer.String s -> s
  | t -> fail "expected string literal, got %s" (Format.asprintf "%a" Lexer.pp_token t)

(* ---- Expressions ----------------------------------------------------------- *)
(* Grammar (precedence low to high):
     or_expr   := and_expr [OR and_expr]...
     and_expr  := not_expr [AND not_expr]...
     not_expr  := NOT not_expr | cmp_expr
     cmp_expr  := add_expr [(= | <> | < | <= | > | >=) add_expr]
     add_expr  := mul_expr [(+ | -) mul_expr]...
     mul_expr  := unary [star unary]...
     unary     := - unary | primary
     primary   := literal | identifier | ( or_expr ) *)

let rec parse_or st =
  let lhs = parse_and st in
  if accept_kw st "or" then Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "and" then And (lhs, parse_and st) else lhs

and parse_not st = if accept_kw st "not" then Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.Symbol "=" -> Some Eq
    | Lexer.Symbol "<>" -> Some Ne
    | Lexer.Symbol "<" -> Some Lt
    | Lexer.Symbol "<=" -> Some Le
    | Lexer.Symbol ">" -> Some Gt
    | Lexer.Symbol ">=" -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Cmp (op, lhs, parse_add st)

and parse_add st =
  let rec loop lhs =
    if accept_symbol st "+" then loop (Arith (Add, lhs, parse_mul st))
    else if accept_symbol st "-" then loop (Arith (Sub, lhs, parse_mul st))
    else lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    if accept_symbol st "*" then loop (Arith (Mul, lhs, parse_unary st)) else lhs
  in
  loop (parse_unary st)

and parse_unary st =
  if accept_symbol st "-" then Neg (parse_unary st) else parse_primary st

and parse_primary st =
  match next st with
  | Lexer.Int i -> Lit (Value.Int i)
  | Lexer.Float f -> Lit (Value.Float f)
  | Lexer.String s -> Lit (Value.Str s)
  | Lexer.Ident "true" -> Lit (Value.Bool true)
  | Lexer.Ident "false" -> Lit (Value.Bool false)
  | Lexer.Ident "null" -> Lit Value.Null
  | Lexer.Ident name -> Col name
  | Lexer.Symbol "(" ->
      let e = parse_or st in
      expect_symbol st ")";
      e
  | t -> fail "unexpected token in expression: %s" (Format.asprintf "%a" Lexer.pp_token t)

(* ---- Statements -------------------------------------------------------------- *)

let parse_where st = if accept_kw st "where" then Some (parse_or st) else None

let parse_select st =
  let proj =
    if accept_symbol st "*" then Star
    else if accept_kw st "count" then begin
      expect_symbol st "(";
      expect_symbol st "*";
      expect_symbol st ")";
      Aggregate Count_star
    end
    else if accept_kw st "sum" then begin
      expect_symbol st "(";
      let c = ident st in
      expect_symbol st ")";
      Aggregate (Sum c)
    end
    else if accept_kw st "min" then begin
      expect_symbol st "(";
      let c = ident st in
      expect_symbol st ")";
      Aggregate (Min c)
    end
    else if accept_kw st "max" then begin
      expect_symbol st "(";
      let c = ident st in
      expect_symbol st ")";
      Aggregate (Max c)
    end
    else begin
      let rec cols acc =
        let c = ident st in
        if accept_symbol st "," then cols (c :: acc) else List.rev (c :: acc)
      in
      Columns (cols [])
    end
  in
  expect_kw st "from";
  let table = ident st in
  let where = parse_where st in
  let order_by =
    if accept_kw st "order" then begin
      expect_kw st "by";
      let c = ident st in
      let dir = if accept_kw st "desc" then Desc else (ignore (accept_kw st "asc"); Asc) in
      Some (c, dir)
    end
    else None
  in
  let limit =
    if accept_kw st "limit" then
      match next st with
      | Lexer.Int i -> Some i
      | t -> fail "expected integer after LIMIT, got %s" (Format.asprintf "%a" Lexer.pp_token t)
    else None
  in
  Select { proj; table; where; order_by; limit }

let parse_insert st =
  expect_kw st "into";
  let table = ident st in
  expect_kw st "values";
  let parse_row () =
    expect_symbol st "(";
    let rec vals acc =
      let e = parse_or st in
      if accept_symbol st "," then vals (e :: acc)
      else begin
        expect_symbol st ")";
        List.rev (e :: acc)
      end
    in
    vals []
  in
  let rec rows acc =
    let r = parse_row () in
    if accept_symbol st "," then rows (r :: acc) else List.rev (r :: acc)
  in
  Insert { table; rows = rows [] }

let parse_update st =
  let table = ident st in
  expect_kw st "set";
  let rec sets acc =
    let col = ident st in
    expect_symbol st "=";
    let e = parse_or st in
    if accept_symbol st "," then sets ((col, e) :: acc) else List.rev ((col, e) :: acc)
  in
  let sets = sets [] in
  let where = parse_where st in
  Update { table; sets; where }

let parse_create st =
  if accept_kw st "table" then begin
    let name = ident st in
    expect_symbol st "(";
    let cols = ref [] in
    let key = ref None in
    let rec items () =
      (if accept_kw st "primary" then begin
         expect_kw st "key";
         expect_symbol st "(";
         key := Some (ident st);
         expect_symbol st ")"
       end
       else cols := ident st :: !cols);
      if accept_symbol st "," then items () else expect_symbol st ")"
    in
    items ();
    let cols = List.rev !cols in
    let key =
      match !key with
      | Some k -> k
      | None -> ( match cols with [] -> fail "empty column list" | c :: _ -> c)
    in
    Create_table { name; cols; key }
  end
  else if accept_kw st "index" then begin
    let name = ident st in
    expect_kw st "on";
    let table = ident st in
    expect_symbol st "(";
    let column = ident st in
    expect_symbol st ")";
    Create_index { name; table; column }
  end
  else fail "expected TABLE or INDEX after CREATE"

let parse_begin st =
  let isolation = ref None in
  let read_only = ref false in
  let deferrable = ref false in
  ignore (accept_kw st "transaction");
  let rec modifiers () =
    if accept_kw st "isolation" then begin
      expect_kw st "level";
      if accept_kw st "read" then begin
        expect_kw st "committed";
        isolation := Some Read_committed
      end
      else if accept_kw st "repeatable" then begin
        expect_kw st "read";
        isolation := Some Repeatable_read
      end
      else if accept_kw st "serializable" then isolation := Some Serializable
      else fail "unknown isolation level";
      ignore (accept_symbol st ",");
      modifiers ()
    end
    else if accept_kw st "read" then begin
      if accept_kw st "only" then read_only := true
      else if accept_kw st "write" then read_only := false
      else fail "expected ONLY or WRITE after READ";
      ignore (accept_symbol st ",");
      modifiers ()
    end
    else if accept_kw st "deferrable" then begin
      deferrable := true;
      ignore (accept_symbol st ",");
      modifiers ()
    end
  in
  modifiers ();
  Begin { isolation = !isolation; read_only = !read_only; deferrable = !deferrable }

let parse_stmt_inner st =
  match next st with
  | Lexer.Ident "create" -> parse_create st
  | Lexer.Ident "drop" ->
      expect_kw st "index";
      Drop_index (ident st)
  | Lexer.Ident "insert" -> parse_insert st
  | Lexer.Ident "select" -> parse_select st
  | Lexer.Ident "update" -> parse_update st
  | Lexer.Ident "delete" ->
      expect_kw st "from";
      let table = ident st in
      Delete { table; where = parse_where st }
  | Lexer.Ident "begin" | Lexer.Ident "start" -> parse_begin st
  | Lexer.Ident "commit" ->
      if accept_kw st "prepared" then Commit_prepared (string_lit st) else Commit
  | Lexer.Ident "rollback" ->
      if accept_kw st "prepared" then Rollback_prepared (string_lit st)
      else if accept_kw st "to" then begin
        ignore (accept_kw st "savepoint");
        Rollback_to (ident st)
      end
      else Rollback
  | Lexer.Ident "abort" -> Rollback
  | Lexer.Ident "savepoint" -> Savepoint (ident st)
  | Lexer.Ident "release" ->
      ignore (accept_kw st "savepoint");
      Release (ident st)
  | Lexer.Ident "prepare" ->
      expect_kw st "transaction";
      Prepare_transaction (string_lit st)
  | Lexer.Ident "vacuum" -> Vacuum
  | Lexer.Ident "show" -> (
      match next st with
      | Lexer.Ident "tables" -> Show_tables
      | Lexer.Ident "locks" -> Show_locks
      | Lexer.Ident "conflicts" -> Show_conflicts
      | t -> fail "expected TABLES, LOCKS or CONFLICTS, got %s"
               (Format.asprintf "%a" Lexer.pp_token t))
  | t -> fail "unexpected start of statement: %s" (Format.asprintf "%a" Lexer.pp_token t)

let parse input =
  let st = { toks = Lexer.tokenize input } in
  let stmt = parse_stmt_inner st in
  ignore (accept_symbol st ";");
  (match peek st with
  | Lexer.Eof -> ()
  | t -> fail "trailing input: %s" (Format.asprintf "%a" Lexer.pp_token t));
  stmt

let parse_script input =
  let st = { toks = Lexer.tokenize input } in
  let rec loop acc =
    match peek st with
    | Lexer.Eof -> List.rev acc
    | Lexer.Symbol ";" ->
        advance st;
        loop acc
    | _ ->
        let stmt = parse_stmt_inner st in
        (match peek st with
        | Lexer.Symbol ";" -> advance st
        | Lexer.Eof -> ()
        | t -> fail "expected ';', got %s" (Format.asprintf "%a" Lexer.pp_token t));
        loop (stmt :: acc)
  in
  loop []

let parse_expr input =
  let st = { toks = Lexer.tokenize input } in
  let e = parse_or st in
  (match peek st with
  | Lexer.Eof -> ()
  | t -> fail "trailing input: %s" (Format.asprintf "%a" Lexer.pp_token t));
  e
