type token =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Symbol of string
  | Eof

exception Lex_error of string

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "ident:%s" s
  | Int i -> Format.fprintf ppf "int:%d" i
  | Float f -> Format.fprintf ppf "float:%g" f
  | String s -> Format.fprintf ppf "string:%S" s
  | Symbol s -> Format.fprintf ppf "sym:%s" s
  | Eof -> Format.pp_print_string ppf "eof"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (Ident (String.lowercase_ascii (String.sub input start (!i - start))))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      if !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1] then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done;
        emit (Float (float_of_string (String.sub input start (!i - start))))
      end
      else emit (Int (int_of_string (String.sub input start (!i - start))))
    end
    else if c = '\'' then begin
      (* single-quoted string, '' escapes a quote *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error "unterminated string literal");
      emit (String (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
          emit (Symbol (if two = "!=" then "<>" else two));
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | ';' | '*' | '=' | '<' | '>' | '+' | '-' ->
              emit (Symbol (String.make 1 c));
              incr i
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c)))
    end
  done;
  List.rev (Eof :: !tokens)
