(** Abstract syntax of the SQL subset.

    The paper's motivating deployment (§2.2) runs ad-hoc SQL against the
    serializable engine; this layer provides that interface.  The subset
    covers the data definition, data manipulation, and transaction-control
    statements the paper's scenarios need, including the isolation-level
    and READ ONLY / DEFERRABLE modifiers and two-phase commit. *)

open Ssi_storage

type expr =
  | Lit of Value.t
  | Col of string
  | Neg of expr
  | Arith of arith_op * expr * expr
  | Cmp of cmp_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

and arith_op = Add | Sub | Mul

and cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type order = Asc | Desc

type aggregate = Count_star | Sum of string | Min of string | Max of string

type projection =
  | Star
  | Columns of string list
  | Aggregate of aggregate

type isolation_level = Read_committed | Repeatable_read | Serializable

type stmt =
  | Create_table of { name : string; cols : string list; key : string }
  | Create_index of { name : string; table : string; column : string }
  | Drop_index of string
  | Insert of { table : string; rows : expr list list }
  | Select of {
      proj : projection;
      table : string;
      where : expr option;
      order_by : (string * order) option;
      limit : int option;
    }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Begin of { isolation : isolation_level option; read_only : bool; deferrable : bool }
  | Commit
  | Rollback
  | Savepoint of string
  | Rollback_to of string
  | Release of string
  | Prepare_transaction of string
  | Commit_prepared of string
  | Rollback_prepared of string
  | Vacuum
  | Show_tables
  | Show_locks  (** the SIREAD lock table, like pg_locks *)
  | Show_conflicts  (** the rw-antidependency graph *)

val pp_stmt : Format.formatter -> stmt -> unit
(** Debug printer (coarse, not a pretty-printer). *)
