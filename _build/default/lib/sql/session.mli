(** SQL sessions: statement execution against the engine.

    A session owns at most one open transaction.  Statements outside an
    explicit [BEGIN]/[COMMIT] run in autocommit mode (their own
    serializable transaction).  Serialization failures surface as
    {!Sql_error} with a PostgreSQL-style message, and — as in PostgreSQL —
    abort the open transaction, which must then be rolled back (any
    further statement except [ROLLBACK]/[COMMIT] fails). *)

open Ssi_storage

exception Sql_error of string

type t

val create : Ssi_engine.Engine.t -> t
(** Wrap an engine; multiple sessions can share one engine (that is how
    concurrent SQL transactions are expressed). *)

val db : t -> Ssi_engine.Engine.t

val in_transaction : t -> bool

type result =
  | Rows of { cols : string list; rows : Value.t array list }
  | Affected of int  (** rows touched by INSERT/UPDATE/DELETE *)
  | Message of string  (** transaction control and DDL acknowledgements *)

val exec : t -> Ast.stmt -> result
(** Raises {!Sql_error} on execution errors (including serialization
    failures) and [Parser.Parse_error] never (parsing happened before). *)

val exec_sql : t -> string -> result list
(** Parse and execute a [;]-separated script, stopping at the first
    error. *)

val render : result -> string
(** psql-style text rendering. *)
