open Ssi_storage

type expr =
  | Lit of Value.t
  | Col of string
  | Neg of expr
  | Arith of arith_op * expr * expr
  | Cmp of cmp_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

and arith_op = Add | Sub | Mul

and cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type order = Asc | Desc

type aggregate = Count_star | Sum of string | Min of string | Max of string

type projection = Star | Columns of string list | Aggregate of aggregate

type isolation_level = Read_committed | Repeatable_read | Serializable

type stmt =
  | Create_table of { name : string; cols : string list; key : string }
  | Create_index of { name : string; table : string; column : string }
  | Drop_index of string
  | Insert of { table : string; rows : expr list list }
  | Select of {
      proj : projection;
      table : string;
      where : expr option;
      order_by : (string * order) option;
      limit : int option;
    }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Begin of { isolation : isolation_level option; read_only : bool; deferrable : bool }
  | Commit
  | Rollback
  | Savepoint of string
  | Rollback_to of string
  | Release of string
  | Prepare_transaction of string
  | Commit_prepared of string
  | Rollback_prepared of string
  | Vacuum
  | Show_tables
  | Show_locks
  | Show_conflicts

let pp_stmt ppf stmt =
  let name =
    match stmt with
    | Create_table { name; _ } -> "CREATE TABLE " ^ name
    | Create_index { name; _ } -> "CREATE INDEX " ^ name
    | Drop_index n -> "DROP INDEX " ^ n
    | Insert { table; _ } -> "INSERT INTO " ^ table
    | Select { table; _ } -> "SELECT FROM " ^ table
    | Update { table; _ } -> "UPDATE " ^ table
    | Delete { table; _ } -> "DELETE FROM " ^ table
    | Begin _ -> "BEGIN"
    | Commit -> "COMMIT"
    | Rollback -> "ROLLBACK"
    | Savepoint s -> "SAVEPOINT " ^ s
    | Rollback_to s -> "ROLLBACK TO " ^ s
    | Release s -> "RELEASE " ^ s
    | Prepare_transaction g -> "PREPARE TRANSACTION " ^ g
    | Commit_prepared g -> "COMMIT PREPARED " ^ g
    | Rollback_prepared g -> "ROLLBACK PREPARED " ^ g
    | Vacuum -> "VACUUM"
    | Show_tables -> "SHOW TABLES"
    | Show_locks -> "SHOW LOCKS"
    | Show_conflicts -> "SHOW CONFLICTS"
  in
  Format.pp_print_string ppf name
