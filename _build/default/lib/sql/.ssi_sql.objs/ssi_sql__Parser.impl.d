lib/sql/parser.ml: Ast Format Lexer List Printf Ssi_storage String Value
