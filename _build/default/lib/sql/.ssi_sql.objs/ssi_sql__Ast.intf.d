lib/sql/ast.mli: Format Ssi_storage Value
