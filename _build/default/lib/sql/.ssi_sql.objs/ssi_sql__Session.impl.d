lib/sql/session.ml: Array Ast Float Format Hashtbl List Parser Printf Schema Ssi_core Ssi_engine Ssi_storage Ssi_util String Value
