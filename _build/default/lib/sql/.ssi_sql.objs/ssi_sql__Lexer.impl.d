lib/sql/lexer.ml: Buffer Format List Printf String
