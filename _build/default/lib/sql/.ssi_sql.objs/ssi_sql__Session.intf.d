lib/sql/session.mli: Ast Ssi_engine Ssi_storage Value
