lib/sql/ast.ml: Format Ssi_storage Value
