(** Hand-written SQL lexer. *)

type token =
  | Ident of string  (** lower-cased bare identifier or keyword *)
  | Int of int
  | Float of float
  | String of string  (** single-quoted, with [''] escaping *)
  | Symbol of string  (** punctuation and operators: ( ) , ; * = <> < <= > >= + - *)
  | Eof

exception Lex_error of string

val tokenize : string -> token list
(** Raises {!Lex_error} on malformed input (unterminated string, stray
    character). *)

val pp_token : Format.formatter -> token -> unit
