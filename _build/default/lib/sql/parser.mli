(** Recursive-descent parser for the SQL subset (see {!Ast}). *)

exception Parse_error of string

val parse : string -> Ast.stmt
(** Parse one statement (an optional trailing [;] is accepted). *)

val parse_script : string -> Ast.stmt list
(** Parse a [;]-separated sequence of statements. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (for tests). *)
