(** SIBENCH (§8.1): a single table of [rows] key/value pairs; the mix is
    50% update transactions (set the value of one random key) and 50% query
    transactions (scan the whole table for the key with the lowest value).

    Queries scan in chunks of [chunk] keys per operation so that they take
    time proportional to the table size and, under SSI with the read-only
    optimizations, can be promoted to a safe snapshot mid-transaction once
    the updates concurrent at their start have finished. *)

val table : string

val setup : rows:int -> Ssi_engine.Engine.t -> unit

val specs : rows:int -> ?chunk:int -> unit -> Driver.spec list
(** [chunk] defaults to 50. *)

val query_min : rows:int -> chunk:int -> Ssi_engine.Engine.txn -> int * int
(** The query transaction body, exposed for tests: returns
    [(key, min value)]. *)

val update_one : Ssi_util.Rng.t -> rows:int -> Ssi_engine.Engine.txn -> unit
