lib/workload/driver.mli: Ssi_core Ssi_engine Ssi_util
