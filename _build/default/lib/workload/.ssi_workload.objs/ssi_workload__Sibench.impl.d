lib/workload/sibench.ml: Array Driver List Rng Ssi_engine Ssi_storage Ssi_util Value
