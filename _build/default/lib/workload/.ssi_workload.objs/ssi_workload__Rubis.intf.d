lib/workload/rubis.mli: Driver Ssi_engine Ssi_util
