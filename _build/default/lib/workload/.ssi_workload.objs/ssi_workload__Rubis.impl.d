lib/workload/rubis.ml: Array Driver List Printf Rng Ssi_engine Ssi_storage Ssi_util Value
