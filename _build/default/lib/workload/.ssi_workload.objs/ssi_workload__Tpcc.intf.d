lib/workload/tpcc.mli: Driver Ssi_engine Ssi_util
