lib/workload/tpcc.ml: Array Driver Hashtbl List Printf Rng Ssi_engine Ssi_storage Ssi_util Value
