lib/workload/driver.ml: Hashtbl List Rng Ssi_core Ssi_engine Ssi_sim Ssi_util
