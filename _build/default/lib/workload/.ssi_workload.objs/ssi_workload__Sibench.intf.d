lib/workload/sibench.mli: Driver Ssi_engine Ssi_util
