(** DBT-2++ (§8.2): a compact TPC-C-style transaction-processing workload
    extended with Cahill's "credit check" transaction, which can create a
    cycle of dependencies when run concurrently with NEW-ORDER and PAYMENT
    (plain TPC-C is serializable under snapshot isolation, so it cannot
    exercise SSI).

    The schema is scaled down (10 districts per warehouse, 30 customers per
    district, 100 items) but keeps TPC-C's contention structure: the
    district row's next-order-id counter, stock decrements, and per-customer
    balance updates.  As in the paper's modified DBT-2, the warehouse and
    district year-to-date totals are omitted to remove artificial contention
    points, and the read-only item table is cached outside the database.

    The read-only fraction of the mix ([ro_fraction]) scales the share of
    ORDER-STATUS and STOCK-LEVEL transactions while keeping the remaining
    transaction proportions identical — the x-axis of Figure 5. *)

module E = Ssi_engine.Engine

val districts_per_warehouse : int
val customers_per_district : int
val items : int

val setup : warehouses:int -> E.t -> unit

val specs : warehouses:int -> ro_fraction:float -> Driver.spec list

(** Individual transaction bodies (exposed for tests). *)

val new_order : Ssi_util.Rng.t -> warehouses:int -> E.txn -> unit
val payment : Ssi_util.Rng.t -> warehouses:int -> E.txn -> unit
val order_status : Ssi_util.Rng.t -> warehouses:int -> E.txn -> unit
val delivery : Ssi_util.Rng.t -> warehouses:int -> E.txn -> unit
val stock_level : Ssi_util.Rng.t -> warehouses:int -> E.txn -> unit
val credit_check : Ssi_util.Rng.t -> warehouses:int -> E.txn -> unit
