(** RUBiS (§8.3): an auction-site workload modelled on eBay, with the
    standard "bidding" mix — 85% read-only interactions (browsing
    categories, viewing items, bid histories and user profiles) and 15%
    read/write interactions (placing bids, buying, commenting,
    registering).

    The characteristic rw-conflict of the paper is kept: queries listing
    the current bids of all items in a category conflict with concurrent
    bids on those items. *)

module E = Ssi_engine.Engine

val categories : int

val setup : users:int -> items:int -> E.t -> unit

val specs : users:int -> items:int -> Driver.spec list
(** The bidding mix (85% read-only by weight). *)

(** Individual interaction bodies (exposed for tests). *)

val browse_category : Ssi_util.Rng.t -> items:int -> E.txn -> unit
val view_item : Ssi_util.Rng.t -> items:int -> E.txn -> unit
val view_user : Ssi_util.Rng.t -> users:int -> E.txn -> unit
val view_bid_history : Ssi_util.Rng.t -> items:int -> E.txn -> unit
val place_bid : Ssi_util.Rng.t -> users:int -> items:int -> E.txn -> unit
val buy_now : Ssi_util.Rng.t -> users:int -> items:int -> E.txn -> unit
val leave_comment : Ssi_util.Rng.t -> users:int -> E.txn -> unit
