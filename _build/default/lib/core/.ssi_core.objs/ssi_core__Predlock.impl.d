lib/core/predlock.ml: Format Hashtbl Heap List Ssi_mvcc Ssi_storage String Value
