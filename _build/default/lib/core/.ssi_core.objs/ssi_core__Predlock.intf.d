lib/core/predlock.mli: Format Heap Ssi_mvcc Ssi_storage Value
