lib/core/ssi.ml: Buffer Hashtbl Heap List Predlock Printf Queue Ssi_mvcc Ssi_storage Ssi_util Waitq
