lib/core/ssi.mli: Heap Predlock Ssi_mvcc Ssi_storage Ssi_util Value
