lib/replication/replica.mli: Ssi_engine Ssi_storage Value
