lib/replication/replica.ml: Array Hashtbl List Queue Ssi_engine Ssi_sim Ssi_storage Ssi_util Value Waitq
