lib/mvcc/mvcc.ml: Hashtbl Heap List Printf Ssi_storage
