lib/mvcc/mvcc.mli: Ssi_storage
