open Ssi_storage

type entry = { ik : Value.t; pk : Value.t }

let compare_entry a b =
  let c = Value.compare a.ik b.ik in
  if c <> 0 then c else Value.compare a.pk b.pk

type node = Leaf of leaf | Internal of internal

and leaf = { lid : int; mutable entries : entry array; mutable next : leaf option }

and internal = {
  mutable seps : entry array;  (** separators; child [i] holds entries < [seps.(i)] *)
  mutable children : node array;
}

type t = {
  order : int;
  idx_name : string;
  mutable root : node;
  mutable next_page : int;
  mutable on_split : old_page:int -> new_page:int -> unit;
  mutable count : int;
}

let create ?(order = 32) ~name () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  {
    order;
    idx_name = name;
    root = Leaf { lid = 0; entries = [||]; next = None };
    next_page = 1;
    on_split = (fun ~old_page:_ ~new_page:_ -> ());
    count = 0;
  }

let name t = t.idx_name
let set_on_split t hook = t.on_split <- hook
let cardinal t = t.count

let fresh_page t =
  let id = t.next_page in
  t.next_page <- id + 1;
  id

(* Index of the first element of [a] that is >= [e] (i.e. lower bound). *)
let lower_bound a e =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_entry a.(mid) e < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child to descend into for entry [e]: first separator > [e] decides. *)
let child_index seps e =
  let lo = ref 0 and hi = ref (Array.length seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_entry seps.(mid) e <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

(* Result of inserting into a subtree: either it fit, or the node split and
   the parent must add [sep] (first entry of [right]) and child [right]. *)
type split = No_split | Split of entry * node

let rec insert_into t node e ~page_out =
  match node with
  | Leaf l ->
      let i = lower_bound l.entries e in
      if i < Array.length l.entries && compare_entry l.entries.(i) e = 0 then begin
        page_out := l.lid;
        No_split
      end
      else begin
        l.entries <- array_insert l.entries i e;
        t.count <- t.count + 1;
        if Array.length l.entries <= t.order then begin
          page_out := l.lid;
          No_split
        end
        else begin
          (* Split: right half moves to a fresh page. *)
          let n = Array.length l.entries in
          let mid = n / 2 in
          let right_entries = Array.sub l.entries mid (n - mid) in
          let right = { lid = fresh_page t; entries = right_entries; next = l.next } in
          l.entries <- Array.sub l.entries 0 mid;
          l.next <- Some right;
          t.on_split ~old_page:l.lid ~new_page:right.lid;
          page_out := (if i < mid then l.lid else right.lid);
          Split (right_entries.(0), Leaf right)
        end
      end
  | Internal inner -> (
      let ci = child_index inner.seps e in
      match insert_into t inner.children.(ci) e ~page_out with
      | No_split -> No_split
      | Split (sep, right_child) ->
          inner.seps <- array_insert inner.seps ci sep;
          inner.children <- array_insert inner.children (ci + 1) right_child;
          if Array.length inner.children <= t.order then No_split
          else begin
            let nkids = Array.length inner.children in
            let mid = nkids / 2 in
            (* Separator promoted to the parent; it does not stay in either
               half. *)
            let promoted = inner.seps.(mid - 1) in
            let right =
              {
                seps = Array.sub inner.seps mid (Array.length inner.seps - mid);
                children = Array.sub inner.children mid (nkids - mid);
              }
            in
            inner.seps <- Array.sub inner.seps 0 (mid - 1);
            inner.children <- Array.sub inner.children 0 mid;
            Split (promoted, Internal right)
          end)

let insert t ~key ~pk =
  let e = { ik = key; pk } in
  let page_out = ref 0 in
  let before = t.count in
  (match insert_into t t.root e ~page_out with
  | No_split -> ()
  | Split (sep, right) ->
      t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] });
  (!page_out, t.count > before)

let rec delete_from t node e =
  match node with
  | Leaf l ->
      let i = lower_bound l.entries e in
      if i < Array.length l.entries && compare_entry l.entries.(i) e = 0 then begin
        l.entries <- array_remove l.entries i;
        t.count <- t.count - 1;
        true
      end
      else false
  | Internal inner -> delete_from t inner.children.(child_index inner.seps e) e

let delete t ~key ~pk = delete_from t t.root { ik = key; pk }

let rec find_leaf node e =
  match node with
  | Leaf l -> l
  | Internal inner -> find_leaf inner.children.(child_index inner.seps e) e

(* The smallest possible entry for index key [k]: Null sorts below every
   other value, so [(k, Null)] lower-bounds all real entries with key [k]. *)
let floor_entry k = { ik = k; pk = Value.Null }

let range t ~lo ~hi ~pages =
  let start = find_leaf t.root (floor_entry lo) in
  let results = ref [] in
  let visit l = pages := l.lid :: !pages in
  let rec walk l i =
    if i >= Array.length l.entries then
      match l.next with
      | None -> ()
      | Some next ->
          visit next;
          walk next 0
    else
      let e = l.entries.(i) in
      if Value.compare e.ik hi > 0 then ()
      else begin
        if Value.compare e.ik lo >= 0 then results := (e.ik, e.pk) :: !results;
        walk l (i + 1)
      end
  in
  visit start;
  walk start (lower_bound start.entries (floor_entry lo));
  List.rev !results

let lookup t key ~pages =
  List.map snd (range t ~lo:key ~hi:key ~pages)

let next_key_after t key =
  (* Position after every entry with index key [key] (Str "" is not above
     every pk, so use a max-sentinel entry on the pk side via comparing
     only the ik when walking). *)
  let start = find_leaf t.root { ik = key; pk = Value.Null } in
  let rec walk l i =
    if i >= Array.length l.entries then
      match l.next with None -> None | Some next -> walk next 0
    else
      let e = l.entries.(i) in
      if Value.compare e.ik key > 0 then Some e.ik else walk l (i + 1)
  in
  walk start (lower_bound start.entries { ik = key; pk = Value.Null })

let rec iter_node node f =
  match node with
  | Leaf l -> Array.iter (fun e -> f e.ik e.pk) l.entries
  | Internal inner -> Array.iter (fun c -> iter_node c f) inner.children

let iter t f = iter_node t.root f

let rec height_of = function
  | Leaf _ -> 1
  | Internal inner -> 1 + height_of inner.children.(0)

let height t = height_of t.root

let leaf_pages t =
  let rec leftmost = function Leaf l -> l | Internal i -> leftmost i.children.(0) in
  let rec collect l acc =
    match l.next with None -> List.rev (l.lid :: acc) | Some n -> collect n (l.lid :: acc)
  in
  collect (leftmost t.root) []

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let expected_height = height t in
  (* Checks each subtree; returns (min entry, max entry) option and counts
     entries.  [lo]/[hi] are the separator bounds inherited from parents. *)
  let total = ref 0 in
  let rec check node depth lo hi =
    (match node with
    | Leaf l ->
        if depth <> expected_height then fail "leaf at depth %d, expected %d" depth expected_height;
        if Array.length l.entries > t.order then fail "leaf %d overfull" l.lid;
        total := !total + Array.length l.entries;
        Array.iteri
          (fun i e ->
            if i > 0 && compare_entry l.entries.(i - 1) e >= 0 then
              fail "leaf %d not strictly sorted" l.lid)
          l.entries
    | Internal inner ->
        let nkids = Array.length inner.children in
        if nkids > t.order then fail "internal node overfull";
        if nkids < 2 then fail "internal node underfull";
        if Array.length inner.seps <> nkids - 1 then fail "separator count mismatch";
        Array.iteri
          (fun i s ->
            if i > 0 && compare_entry inner.seps.(i - 1) s >= 0 then
              fail "separators not sorted")
          inner.seps;
        Array.iteri
          (fun i child ->
            let clo = if i = 0 then lo else Some inner.seps.(i - 1) in
            let chi = if i = nkids - 1 then hi else Some inner.seps.(i) in
            check child (depth + 1) clo chi)
          inner.children);
    (* Bound check on every entry of the subtree via leaves. *)
    match node with
    | Leaf l ->
        Array.iter
          (fun e ->
            (match lo with
            | Some b when compare_entry e b < 0 -> fail "entry below separator bound"
            | _ -> ());
            match hi with
            | Some b when compare_entry e b >= 0 -> fail "entry above separator bound"
            | _ -> ())
          l.entries
    | Internal _ -> ()
  in
  check t.root 1 None None;
  if !total <> t.count then fail "count mismatch: counted %d, recorded %d" !total t.count;
  (* Leaf chain covers all leaves in order. *)
  let chain = leaf_pages t in
  let rec collect_leaves node acc =
    match node with
    | Leaf l -> l.lid :: acc
    | Internal i -> Array.fold_right collect_leaves i.children acc
  in
  let tree_leaves = collect_leaves t.root [] in
  if chain <> tree_leaves then fail "leaf chain does not match tree order"
