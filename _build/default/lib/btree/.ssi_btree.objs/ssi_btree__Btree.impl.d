lib/btree/btree.ml: Array List Printf Ssi_storage Value
