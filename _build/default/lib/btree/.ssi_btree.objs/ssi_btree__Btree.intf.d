lib/btree/btree.mli: Ssi_storage Value
