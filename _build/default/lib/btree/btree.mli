(** B+-tree secondary indexes with page-granularity predicate-lock hooks.

    The tree maps index keys to primary keys (non-unique: several entries
    may share an index key; the [(index key, primary key)] pair is unique).
    Leaves are chained for range scans.

    Two properties exist purely for SSI (paper §5.2.1):
    - every scan reports the ids of the {e leaf pages it examined}, which is
      what the SSI lock manager locks to detect phantoms ("index-gap"
      locks at page granularity);
    - {!set_on_split} registers a callback fired when a leaf page splits, so
      the lock manager can copy predicate locks from the old page to the new
      one (otherwise a lock could silently stop covering its gap).

    Deletion does not merge pages; underfull leaves persist.  This matches
    the needs of the reproduction (PostgreSQL's page recycling interacts
    with predicate locks via the same promote-to-relation path as DDL,
    which [Heap.rewrite] already exercises). *)

open Ssi_storage

type t

val create : ?order:int -> name:string -> unit -> t
(** [order] (default 32) is the maximum number of entries per leaf and of
    children per internal node; it must be at least 4. *)

val name : t -> string

val set_on_split : t -> (old_page:int -> new_page:int -> unit) -> unit
(** Register the page-split hook.  At most one hook is active. *)

val insert : t -> key:Value.t -> pk:Value.t -> int * bool
(** Add an entry and return the id of the leaf page that now contains it
    (after any split), plus whether the entry was actually new.  Duplicate
    [(key, pk)] insertions are idempotent. *)

val delete : t -> key:Value.t -> pk:Value.t -> bool
(** Remove an entry; returns whether it was present. *)

val lookup : t -> Value.t -> pages:int list ref -> Value.t list
(** Primary keys indexed under exactly [key], appending examined leaf-page
    ids to [pages]. *)

val range : t -> lo:Value.t -> hi:Value.t -> pages:int list ref -> (Value.t * Value.t) list
(** Entries with [lo <= key <= hi] in ascending order, as
    [(key, pk)] pairs, appending examined leaf-page ids to [pages].  The
    page holding the first entry beyond the range is also examined (and
    therefore reported): it covers the gap just past [hi]. *)

val next_key_after : t -> Value.t -> Value.t option
(** The smallest index key strictly greater than [key], if any — the
    "next key" of ARIES/KVL-style next-key locking. *)

val iter : t -> (Value.t -> Value.t -> unit) -> unit
(** Full in-order iteration (no page reporting; sequential scans take a
    relation-level lock instead). *)

val cardinal : t -> int

val height : t -> int

val leaf_pages : t -> int list
(** Ids of all current leaf pages, leftmost first (for tests). *)

val check_invariants : t -> unit
(** Raises [Failure] if a structural invariant is broken: order bounds,
    sortedness, separator correctness, uniform depth, leaf-chain
    consistency.  For tests. *)
