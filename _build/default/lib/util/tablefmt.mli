(** Plain-text table rendering for the experiment harness. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a table with a header rule.  Column widths
    fit the widest cell; [align] defaults to [Right] for every column. *)

val fprintf : Format.formatter -> ?align:align list -> header:string list ->
  string list list -> unit
(** Like {!render} but printed to a formatter, followed by a newline. *)
