type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let copy t = { state = t.state }

let int t n =
  assert (n > 0);
  (* Rejection-free for practical n: take 62 nonnegative bits and mod.  The
     modulo bias is < n / 2^62, negligible for workload generation. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let int_incl t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, uniform in [0,1). *)
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t p = float t 1.0 < p

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t mean =
  let u = Stdlib.max 1e-12 (float t 1.0) in
  -.mean *. Stdlib.log u

type zipf = { n : int; alpha : float; zetan : float; eta : float; half_pow : float }

let zipf ~n ~theta =
  assert (n > 0);
  if theta <= 0. then { n; alpha = 0.; zetan = 0.; eta = 0.; half_pow = 0. }
  else begin
    let zetan = ref 0. in
    for i = 1 to n do
      zetan := !zetan +. (1. /. Float.pow (float_of_int i) theta)
    done;
    let zeta2 = 1. +. (1. /. Float.pow 2. theta) in
    let alpha = 1. /. (1. -. theta) in
    let eta =
      (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
      /. (1. -. (zeta2 /. !zetan))
    in
    { n; alpha; zetan = !zetan; eta; half_pow = 1. +. Float.pow 0.5 theta }
  end

let zipf_sample z t =
  if z.alpha = 0. then int t z.n
  else begin
    let u = float t 1.0 in
    let uz = u *. z.zetan in
    if uz < 1. then 0
    else if uz < z.half_pow then 1
    else
      let idx =
        int_of_float (float_of_int z.n *. Float.pow ((z.eta *. u) -. z.eta +. 1.) z.alpha)
      in
      if idx >= z.n then z.n - 1 else if idx < 0 then 0 else idx
  end

let nurand t ~a ~x ~y =
  (* C is derived deterministically from A; the TPC-C validity rules on C are
     irrelevant for shape reproduction. *)
  let c = a / 2 in
  let r1 = int_incl t 0 a and r2 = int_incl t x y in
  (((r1 lor r2) + c) mod (y - x + 1)) + x
