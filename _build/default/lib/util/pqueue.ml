type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable heap : 'a entry array; mutable n : int }

let create () = { heap = [||]; n = 0 }

let is_empty t = t.n = 0
let length t = t.n

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.n = cap then begin
    let newcap = if cap = 0 then 16 else 2 * cap in
    let bigger = Array.make newcap t.heap.(0) in
    Array.blit t.heap 0 bigger 0 t.n;
    t.heap <- bigger
  end

let push t ~time ~seq value =
  let e = { time; seq; value } in
  if Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  grow t;
  t.heap.(t.n) <- e;
  t.n <- t.n + 1;
  (* Sift up. *)
  let i = ref (t.n - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.heap.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.heap.(0) <- t.heap.(t.n);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.n && less t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.n && less t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.seq, top.value)
  end

let peek_time t = if t.n = 0 then None else Some t.heap.(0).time

let clear t = t.n <- 0
