type t = { wq_id : int; q : (unit -> unit) Queue.t }

exception Would_block

let next_id = ref 0

let create () =
  incr next_id;
  { wq_id = !next_id; q = Queue.create () }

let id t = t.wq_id
let is_empty t = Queue.is_empty t.q
let length t = Queue.length t.q
let enqueue t f = Queue.add f t.q

let wake_all t =
  (* Drain into a list first: a resumed computation may re-enqueue itself on
     the same queue, and that new wait must not be woken by this call. *)
  let pending = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  List.iter (fun f -> f ()) pending

let wake_one t =
  match Queue.take_opt t.q with
  | None -> false
  | Some f ->
      f ();
      true

type scheduler = {
  suspend : t -> unit;
  charge : float -> unit;
  now : unit -> float;
}

let direct =
  { suspend = (fun _ -> raise Would_block); charge = (fun _ -> ()); now = (fun () -> 0.) }
