(** Wait queues shared between the engine and the scheduler.

    The database engine must be able to suspend the calling transaction
    (write-lock waits, S2PL lock waits, deferrable-transaction admission)
    without depending on a particular scheduler.  A {!Waitq.t} holds opaque
    resume thunks; a {!scheduler} record supplies the suspend/charge
    operations.  [Ssi_sim] provides the real cooperative implementation;
    {!direct} is a degenerate one for single-threaded use, whose [suspend]
    raises {!Would_block} because nobody could ever wake the caller. *)

type t
(** A FIFO queue of suspended computations. *)

exception Would_block
(** Raised by the {!direct} scheduler when an operation would need to
    suspend. *)

val create : unit -> t

val id : t -> int
(** Unique identifier of this queue (diagnostics). *)

val is_empty : t -> bool
val length : t -> int

val enqueue : t -> (unit -> unit) -> unit
(** Used by scheduler implementations: register a resume thunk. *)

val wake_all : t -> unit
(** Call (and remove) every registered resume thunk, in FIFO order. *)

val wake_one : t -> bool
(** Call (and remove) the oldest resume thunk.  Returns [false] when the
    queue was empty. *)

type scheduler = {
  suspend : t -> unit;
      (** Suspend the calling computation until a wake on the queue.  May
          raise {!Would_block}. *)
  charge : float -> unit;
      (** Account [s] seconds of work to the calling computation (virtual
          time under simulation; a no-op in direct mode). *)
  now : unit -> float;  (** Current virtual time (0. in direct mode). *)
}

val direct : scheduler
(** Scheduler for plain, non-simulated API use. *)
