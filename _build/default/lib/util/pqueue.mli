(** Mutable binary min-heap keyed by [(float, int)] priority.

    Used as the event queue of the discrete-event scheduler: the float key is
    virtual time and the integer key is a sequence number that breaks ties
    deterministically (FIFO among simultaneous events). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element with the given priority. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] when empty. *)

val peek_time : 'a t -> float option
(** Priority time of the minimum element, without removing it. *)

val clear : 'a t -> unit
