type align = Left | Right

let render ?align ~header rows =
  let ncols = List.length header in
  let align =
    match align with
    | Some a ->
        assert (List.length a = ncols);
        Array.of_list a
    | None -> Array.make ncols Right
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if n <= 0 then cell
    else
      match align.(i) with
      | Left -> cell ^ String.make n ' '
      | Right -> String.make n ' ' ^ cell
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Array.iter
    (fun w ->
      Buffer.add_string buf (String.make w '-');
      Buffer.add_string buf "  ")
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let fprintf ppf ?align ~header rows =
  Format.fprintf ppf "%s@." (render ?align ~header rows)
