lib/util/pqueue.mli:
