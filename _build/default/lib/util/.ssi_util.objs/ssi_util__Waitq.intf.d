lib/util/waitq.mli:
