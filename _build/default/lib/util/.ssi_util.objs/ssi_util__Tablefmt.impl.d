lib/util/tablefmt.ml: Array Buffer Format List String
