lib/util/rng.mli:
