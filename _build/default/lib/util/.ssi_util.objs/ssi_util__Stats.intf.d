lib/util/stats.mli:
