lib/util/tablefmt.mli: Format
