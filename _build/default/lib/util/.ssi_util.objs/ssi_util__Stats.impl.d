lib/util/stats.ml: Array Float List Printf Stdlib String
