lib/util/waitq.ml: List Queue
