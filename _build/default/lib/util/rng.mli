(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    test and benchmark is reproducible from a seed.  The generator is
    splitmix64, which is fast, has a 64-bit state, and supports cheap
    splitting for independent per-worker streams. *)

type t
(** Mutable generator state. *)

val make : int -> t
(** [make seed] creates a generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t].  Streams
    produced by [split] are statistically independent of the parent. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform in [\[lo, hi\]].  Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean. *)

type zipf
(** Precomputed Zipf distribution over [\[0, n)]. *)

val zipf : n:int -> theta:float -> zipf
(** [zipf ~n ~theta] builds a Zipf(theta) distribution over [n] items.
    [theta = 0.] degenerates to uniform. *)

val zipf_sample : zipf -> t -> int
(** Sample an index in [\[0, n)]; smaller indexes are hotter. *)

val nurand : t -> a:int -> x:int -> y:int -> int
(** TPC-C NURand(A, x, y) non-uniform random, with C fixed to a constant
    derived from [a] (sufficient for workload generation). *)
