lib/lockmgr/lockmgr.mli: Format Heap Ssi_storage Ssi_util Value
