lib/lockmgr/lockmgr.ml: Format Hashtbl Heap List Printf Queue Ssi_storage Ssi_util String Value Waitq
