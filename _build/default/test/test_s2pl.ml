(* The strict two-phase-locking baseline (§8): blocking behaviour that
   distinguishes it from SSI ("readers block writers"), phantom
   protection via index-page locks, deadlock resolution, and regression
   tests for lock-then-read ordering. *)

open Ssi_storage
module E = Ssi_engine.Engine
module Sim = Ssi_sim.Sim

let vi i = Value.Int i
let iso = E.Serializable_2pl

let setup db =
  E.create_table db ~name:"kv" ~cols:[ "k"; "v" ] ~key:"k";
  E.with_txn db (fun t ->
      for k = 0 to 9 do
        E.insert t ~table:"kv" [| vi k; vi 0 |]
      done)

let bump t k = ignore (E.update t ~table:"kv" ~key:(vi k) ~f:(fun r -> [| r.(0); vi 1 |]))

let test_reader_blocks_writer () =
  (* The defining difference from SSI (§3): a 2PL reader holds its lock to
     commit, so a writer of the same tuple waits. *)
  let write_done_at = ref (-1.) in
  ignore
    (Sim.run (fun () ->
         let db = E.create ~scheduler:Sim.scheduler () in
         setup db;
         Sim.spawn (fun () ->
             let r = E.begin_txn ~isolation:iso db in
             ignore (E.read r ~table:"kv" ~key:(vi 1));
             Sim.delay 2.0;
             E.commit r);
         Sim.spawn (fun () ->
             Sim.delay 0.1;
             E.with_txn ~isolation:iso db (fun w -> bump w 1);
             write_done_at := Sim.now ())));
  Alcotest.(check bool) "writer waited for the reader" true (!write_done_at >= 2.0)

let test_ssi_reader_does_not_block_writer () =
  (* Contrast: under SSI the same schedule does not block. *)
  let write_done_at = ref (-1.) in
  ignore
    (Sim.run (fun () ->
         let db = E.create ~scheduler:Sim.scheduler () in
         setup db;
         Sim.spawn (fun () ->
             let r = E.begin_txn db in
             ignore (E.read r ~table:"kv" ~key:(vi 1));
             Sim.delay 2.0;
             E.commit r);
         Sim.spawn (fun () ->
             Sim.delay 0.1;
             E.with_txn db (fun w -> bump w 1);
             write_done_at := Sim.now ())));
  Alcotest.(check bool) "writer did not wait" true
    (!write_done_at >= 0. && !write_done_at < 1.0)

let test_scan_blocks_insert_phantom () =
  (* A range scan's index-page locks block a concurrent insert into the
     scanned gap until the scanner commits. *)
  let insert_done_at = ref (-1.) in
  ignore
    (Sim.run (fun () ->
         let db = E.create ~scheduler:Sim.scheduler () in
         setup db;
         Sim.spawn (fun () ->
             let r = E.begin_txn ~isolation:iso db in
             ignore (E.index_scan r ~table:"kv" ~index:"kv_pkey" ~lo:(vi 0) ~hi:(vi 100));
             Sim.delay 2.0;
             E.commit r);
         Sim.spawn (fun () ->
             Sim.delay 0.1;
             E.with_txn ~isolation:iso db (fun w ->
                 E.insert w ~table:"kv" [| vi 50; vi 0 |]);
             insert_done_at := Sim.now ())));
  Alcotest.(check bool) "insert waited for the scanner" true (!insert_done_at >= 2.0)

let test_deadlock_becomes_serialization_failure () =
  let failures = ref 0 and commits = ref 0 in
  ignore
    (Sim.run (fun () ->
         let db = E.create ~scheduler:Sim.scheduler () in
         setup db;
         let crossing i j =
           Sim.spawn (fun () ->
               let t = E.begin_txn ~isolation:iso db in
               (try
                  bump t i;
                  Sim.delay 0.5;
                  bump t j;
                  E.commit t;
                  incr commits
                with E.Serialization_failure _ ->
                  E.abort t;
                  incr failures))
         in
         crossing 1 2;
         crossing 2 1));
  Alcotest.(check int) "one deadlock victim" 1 !failures;
  Alcotest.(check int) "one survivor" 1 !commits

let test_reads_latest_after_lock_wait () =
  (* Regression for the stale-snapshot bug: a 2PL reader that waits for a
     writer's lock must observe the writer's committed value. *)
  let seen = ref (-1) in
  ignore
    (Sim.run (fun () ->
         let db = E.create ~scheduler:Sim.scheduler () in
         setup db;
         Sim.spawn (fun () ->
             let w = E.begin_txn ~isolation:iso db in
             ignore (E.update w ~table:"kv" ~key:(vi 1) ~f:(fun r -> [| r.(0); vi 42 |]));
             Sim.delay 1.0;
             E.commit w);
         Sim.spawn (fun () ->
             Sim.delay 0.1;
             E.with_txn ~isolation:iso db (fun r ->
                 match E.read r ~table:"kv" ~key:(vi 1) with
                 | Some row -> seen := Value.as_int row.(1)
                 | None -> ()))));
  Alcotest.(check int) "read the committed value, not a stale snapshot" 42 !seen

let test_scan_rescans_after_page_wait () =
  (* Regression for the stale-probe bug: a scanner that blocked on an
     index page must rescan after the lock is granted, seeing the
     inserter's committed row. *)
  let count = ref (-1) in
  ignore
    (Sim.run (fun () ->
         let db = E.create ~scheduler:Sim.scheduler () in
         setup db;
         Sim.spawn (fun () ->
             let w = E.begin_txn ~isolation:iso db in
             E.insert w ~table:"kv" [| vi 50; vi 0 |];
             Sim.delay 1.0;
             E.commit w);
         Sim.spawn (fun () ->
             Sim.delay 0.1;
             E.with_txn ~isolation:iso db (fun r ->
                 count :=
                   List.length
                     (E.index_scan r ~table:"kv" ~index:"kv_pkey" ~lo:(vi 0) ~hi:(vi 100))))));
  Alcotest.(check int) "scan includes the inserted row" 11 !count

let test_no_siread_tracking () =
  (* The baseline uses the heavyweight lock manager, not SSI state. *)
  let db = E.create () in
  setup db;
  E.with_txn ~isolation:iso db (fun t -> ignore (E.seq_scan t ~table:"kv" ()));
  Alcotest.(check int) "no SSI transactions" 0 (Ssi_core.Ssi.active_count (E.ssi db));
  Alcotest.(check int) "no SIREAD locks" 0
    (Ssi_core.Predlock.total_lock_count (Ssi_core.Ssi.locks (E.ssi db)))

let () =
  Alcotest.run "s2pl"
    [
      ( "blocking",
        [
          Alcotest.test_case "reader blocks writer" `Quick test_reader_blocks_writer;
          Alcotest.test_case "SSI contrast: no blocking" `Quick
            test_ssi_reader_does_not_block_writer;
          Alcotest.test_case "scan blocks phantom insert" `Quick test_scan_blocks_insert_phantom;
          Alcotest.test_case "deadlock handled" `Quick test_deadlock_becomes_serialization_failure;
        ] );
      ( "lock-then-read ordering",
        [
          Alcotest.test_case "point read after wait" `Quick test_reads_latest_after_lock_wait;
          Alcotest.test_case "scan after page wait" `Quick test_scan_rescans_after_page_wait;
        ] );
      ("bookkeeping", [ Alcotest.test_case "no SSI state" `Quick test_no_siread_tracking ]);
    ]
