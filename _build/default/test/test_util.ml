(* Unit and property tests for the utility library: RNG, statistics,
   priority queue, wait queues and table formatting. *)

open Ssi_util

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ---- Rng -------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.make 42 and b = Rng.make 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let parent = Rng.make 1 in
  let child = Rng.split parent in
  let a = Rng.bits64 child and b = Rng.bits64 parent in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_rng_copy () =
  let a = Rng.make 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let prop_int_range =
  QCheck.Test.make ~name:"Rng.int in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.make seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let prop_int_incl =
  QCheck.Test.make ~name:"Rng.int_incl in range" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Rng.make seed in
      let v = Rng.int_incl rng lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_float_range =
  QCheck.Test.make ~name:"Rng.float in range" ~count:500 QCheck.small_int (fun seed ->
      let rng = Rng.make seed in
      let v = Rng.float rng 3.5 in
      v >= 0. && v < 3.5)

let prop_zipf_bounds =
  QCheck.Test.make ~name:"zipf sample in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 500))
    (fun (seed, n) ->
      let rng = Rng.make seed in
      let z = Rng.zipf ~n ~theta:0.99 in
      let v = Rng.zipf_sample z rng in
      v >= 0 && v < n)

let test_zipf_skew () =
  (* With theta near 1, item 0 must be sampled far more often than the
     median item. *)
  let rng = Rng.make 3 in
  let z = Rng.zipf ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Rng.zipf_sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "head is hot" true (counts.(0) > 10 * max 1 counts.(50))

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.make seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_nurand_range () =
  let rng = Rng.make 5 in
  for _ = 1 to 1000 do
    let v = Rng.nurand rng ~a:255 ~x:10 ~y:50 in
    Alcotest.(check bool) "nurand in [x,y]" true (v >= 10 && v <= 50)
  done

(* ---- Stats ------------------------------------------------------------------- *)

let test_stats_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max_value s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.1380899353 (Stats.stddev s)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "median" 50.5 (Stats.median s);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 1.);
  Alcotest.(check (float 0.5)) "p90" 90.1 (Stats.percentile s 0.9)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "median nan" true (Float.is_nan (Stats.median s))

let test_histogram () =
  let h = Stats.histogram ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Stats.hist_add h) [ 0.5; 1.5; 1.6; 9.9; -5.; 25. ];
  Alcotest.(check int) "total" 6 (Stats.hist_count h);
  Alcotest.(check int) "bucket 0 holds underflow" 2 (Stats.hist_bucket h 0);
  Alcotest.(check int) "bucket 1" 2 (Stats.hist_bucket h 1);
  Alcotest.(check int) "last bucket holds overflow" 2 (Stats.hist_bucket h 9);
  Alcotest.(check int) "render lines" 10 (List.length (Stats.hist_render h ~width:20))

(* ---- Pqueue -------------------------------------------------------------------- *)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list (pair (float_bound_inclusive 100.) small_nat))
    (fun items ->
      let q = Pqueue.create () in
      List.iteri (fun i (t, _) -> Pqueue.push q ~time:t ~seq:i i) items;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (t, s, _) -> drain ((t, s) :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare popped)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun i -> Pqueue.push q ~time:1.0 ~seq:i i) [ 1; 2; 3; 4 ];
  let order =
    List.init 4 (fun _ -> match Pqueue.pop q with Some (_, _, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "ties pop in sequence order" [ 1; 2; 3; 4 ] order

let test_pqueue_interleaved () =
  (* Random interleaving of pushes and pops against a reference model. *)
  let rng = Rng.make 11 in
  let q = Pqueue.create () in
  let reference = ref [] in
  let seq = ref 0 in
  for _ = 1 to 20_000 do
    if Rng.bool rng || !reference = [] then begin
      incr seq;
      let t = Rng.float rng 50. in
      Pqueue.push q ~time:t ~seq:!seq !seq;
      reference := (t, !seq) :: !reference
    end
    else
      match Pqueue.pop q with
      | None -> Alcotest.fail "pqueue empty but model is not"
      | Some (t, s, v) ->
          Alcotest.(check int) "payload" s v;
          let expected = List.fold_left min (List.hd !reference) (List.tl !reference) in
          Alcotest.(check bool) "pops model minimum" true ((t, s) = expected);
          reference := List.filter (fun x -> x <> (t, s)) !reference
  done

(* ---- Waitq ---------------------------------------------------------------------- *)

let test_waitq_fifo () =
  let q = Waitq.create () in
  let woken = ref [] in
  List.iter (fun i -> Waitq.enqueue q (fun () -> woken := i :: !woken)) [ 1; 2; 3 ];
  Waitq.wake_all q;
  Alcotest.(check (list int)) "FIFO wake order" [ 1; 2; 3 ] (List.rev !woken);
  Alcotest.(check bool) "drained" true (Waitq.is_empty q)

let test_waitq_wake_one () =
  let q = Waitq.create () in
  let woken = ref 0 in
  Waitq.enqueue q (fun () -> incr woken);
  Waitq.enqueue q (fun () -> incr woken);
  Alcotest.(check bool) "wake one" true (Waitq.wake_one q);
  Alcotest.(check int) "only one" 1 !woken;
  Alcotest.(check int) "one left" 1 (Waitq.length q)

let test_waitq_reentrant_wake () =
  (* A thunk that re-enqueues itself must not be woken by the same
     wake_all. *)
  let q = Waitq.create () in
  let count = ref 0 in
  let rec thunk () =
    incr count;
    if !count < 5 then Waitq.enqueue q thunk
  in
  Waitq.enqueue q thunk;
  Waitq.wake_all q;
  Alcotest.(check int) "woken exactly once" 1 !count

let test_direct_scheduler () =
  Alcotest.check_raises "direct suspend raises" Waitq.Would_block (fun () ->
      Waitq.direct.Waitq.suspend (Waitq.create ()));
  Waitq.direct.Waitq.charge 1.0;
  Alcotest.(check (float 0.)) "direct now" 0. (Waitq.direct.Waitq.now ())

(* ---- Tablefmt ------------------------------------------------------------------- *)

let test_tablefmt_layout () =
  let out =
    Tablefmt.render
      ~align:[ Tablefmt.Left; Tablefmt.Right ]
      ~header:[ "name"; "n" ]
      [ [ "a"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "four lines plus trailing" true (List.length lines >= 4);
  Alcotest.(check bool) "left aligned body" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = 'a') lines)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "nurand range" `Quick test_nurand_range;
        ] );
      qsuite "rng-props"
        [ prop_int_range; prop_int_incl; prop_float_range; prop_zipf_bounds;
          prop_shuffle_permutation ];
      ( "stats",
        [
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "interleaved model" `Quick test_pqueue_interleaved;
        ] );
      qsuite "pqueue-props" [ prop_pqueue_sorted ];
      ( "waitq",
        [
          Alcotest.test_case "fifo" `Quick test_waitq_fifo;
          Alcotest.test_case "wake one" `Quick test_waitq_wake_one;
          Alcotest.test_case "reentrant wake" `Quick test_waitq_reentrant_wake;
          Alcotest.test_case "direct scheduler" `Quick test_direct_scheduler;
        ] );
      ("tablefmt", [ Alcotest.test_case "layout" `Quick test_tablefmt_layout ]);
    ]
