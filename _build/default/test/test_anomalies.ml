(* The paper's two motivating anomalies (§2.1): simple write skew
   (Figure 1) and the three-transaction batch-processing anomaly
   (Figure 2).  Each is shown to occur under snapshot isolation
   (REPEATABLE READ) and to be prevented under SERIALIZABLE. *)

open Ssi_storage
module E = Ssi_engine.Engine

let v_int i = Value.Int i
let v_str s = Value.Str s
let v_bool b = Value.Bool b

(* ---- Example 1: doctors on call (Figure 1) ------------------------------- *)

let setup_doctors () =
  let db = E.create () in
  E.create_table db ~name:"doctors" ~cols:[ "name"; "oncall" ] ~key:"name";
  E.with_txn db (fun t ->
      E.insert t ~table:"doctors" [| v_str "alice"; v_bool true |];
      E.insert t ~table:"doctors" [| v_str "bob"; v_bool true |]);
  db

let oncall_count txn =
  List.length
    (E.seq_scan txn ~table:"doctors" ~filter:(fun row -> Value.as_bool row.(1)) ())

let take_off_call txn name =
  let x = oncall_count txn in
  if x >= 2 then
    ignore (E.update txn ~table:"doctors" ~key:(v_str name) ~f:(fun row ->
        [| row.(0); v_bool false |]))

(* The Figure 1 interleaving: both transactions read, then both write, then
   both try to commit. *)
let run_write_skew isolation =
  let db = setup_doctors () in
  let t1 = E.begin_txn ~isolation db in
  let t2 = E.begin_txn ~isolation db in
  take_off_call t1 "alice";
  take_off_call t2 "bob";
  let outcome1 = (try E.commit t1; `Committed with E.Serialization_failure _ -> `Failed) in
  let outcome2 = (try E.commit t2; `Committed with E.Serialization_failure _ -> `Failed) in
  let remaining = E.with_txn db (fun t -> oncall_count t) in
  (outcome1, outcome2, remaining)

let test_write_skew_under_si () =
  let o1, o2, remaining = run_write_skew E.Repeatable_read in
  Alcotest.(check bool) "T1 commits" true (o1 = `Committed);
  Alcotest.(check bool) "T2 commits" true (o2 = `Committed);
  Alcotest.(check int) "invariant violated: nobody on call" 0 remaining

let test_write_skew_under_ssi () =
  let o1, o2, remaining = run_write_skew E.Serializable in
  Alcotest.(check bool) "exactly one transaction fails" true
    ((o1 = `Committed) <> (o2 = `Committed));
  Alcotest.(check int) "invariant holds: one doctor on call" 1 remaining

let test_write_skew_retry_succeeds () =
  (* With the middleware retry loop of §5.4, both logical transactions
     eventually complete and the invariant holds. *)
  let db = setup_doctors () in
  let t1 = E.begin_txn ~isolation:E.Serializable db in
  let t2 = E.begin_txn ~isolation:E.Serializable db in
  take_off_call t1 "alice";
  take_off_call t2 "bob";
  let retry_done name t =
    try
      E.commit t;
      true
    with E.Serialization_failure _ ->
      E.retry db (fun t -> take_off_call t name);
      true
  in
  ignore (retry_done "alice" t1);
  ignore (retry_done "bob" t2);
  let remaining = E.with_txn db (fun t -> oncall_count t) in
  Alcotest.(check int) "at least one doctor remains on call" 1 remaining

(* ---- Example 2: batch processing (Figure 2) ------------------------------- *)

let setup_batch () =
  let db = E.create () in
  E.create_table db ~name:"control" ~cols:[ "id"; "batch" ] ~key:"id";
  E.create_table db ~name:"receipts" ~cols:[ "rid"; "batch"; "amount" ] ~key:"rid";
  E.create_index db ~table:"receipts" ~name:"receipts_batch" ~column:"batch" ();
  E.with_txn db (fun t ->
      E.insert t ~table:"control" [| v_int 0; v_int 1 |];
      E.insert t ~table:"receipts" [| v_int 100; v_int 1; v_int 10 |]);
  db

let current_batch txn =
  match E.read txn ~table:"control" ~key:(v_int 0) with
  | Some row -> Value.as_int row.(1)
  | None -> failwith "no control row"

let report txn =
  let x = current_batch txn in
  let rows =
    E.index_scan txn ~table:"receipts" ~index:"receipts_batch" ~lo:(v_int (x - 1))
      ~hi:(v_int (x - 1))
  in
  (x, List.fold_left (fun acc row -> acc + Value.as_int row.(2)) 0 rows)

let close_batch txn =
  ignore (E.update txn ~table:"control" ~key:(v_int 0) ~f:(fun row ->
      [| row.(0); v_int (Value.as_int row.(1) + 1) |]))

(* The Figure 2 interleaving: T2 (NEW-RECEIPT) reads the batch number; T3
   (CLOSE-BATCH) increments it and commits; T1 (REPORT) reads the report
   for the closed batch and commits; then T2 commits its receipt into the
   closed batch — invalidating the already-reported total. *)
let run_batch_anomaly isolation =
  let db = setup_batch () in
  let t2 = E.begin_txn ~isolation db in
  let x2 = current_batch t2 in
  let t3 = E.begin_txn ~isolation db in
  close_batch t3;
  E.commit t3;
  let t1 = E.begin_txn ~isolation db in
  let outcome =
    try
      let _, total_before = report t1 in
      E.commit t1;
      E.insert t2 ~table:"receipts" [| v_int 101; v_int x2; v_int 25 |];
      E.commit t2;
      let total_after =
        E.with_txn db (fun t ->
            let rows =
              E.index_scan t ~table:"receipts" ~index:"receipts_batch" ~lo:(v_int x2)
                ~hi:(v_int x2)
            in
            List.fold_left (fun acc row -> acc + Value.as_int row.(2)) 0 rows)
      in
      if total_after <> total_before then `Anomaly else `Serializable
    with E.Serialization_failure _ -> `Prevented
  in
  outcome

let test_batch_anomaly_under_si () =
  Alcotest.(check bool) "anomaly occurs under snapshot isolation" true
    (run_batch_anomaly E.Repeatable_read = `Anomaly)

let test_batch_anomaly_under_ssi () =
  Alcotest.(check bool) "anomaly prevented under SSI" true
    (run_batch_anomaly E.Serializable = `Prevented)

(* Without the read-only REPORT transaction the history is serializable
   (order T2, T3) and SSI must allow it (§3.3: S2PL/OCC would not). *)
let test_batch_without_report_allowed () =
  let db = setup_batch () in
  let t2 = E.begin_txn ~isolation:E.Serializable db in
  let x2 = current_batch t2 in
  let t3 = E.begin_txn ~isolation:E.Serializable db in
  close_batch t3;
  E.commit t3;
  E.insert t2 ~table:"receipts" [| v_int 101; v_int x2; v_int 25 |];
  E.commit t2;
  Alcotest.(check pass) "both committed" () ()

let () =
  Alcotest.run "anomalies"
    [
      ( "write-skew (Figure 1)",
        [
          Alcotest.test_case "occurs under snapshot isolation" `Quick test_write_skew_under_si;
          Alcotest.test_case "prevented under SSI" `Quick test_write_skew_under_ssi;
          Alcotest.test_case "safe retry completes" `Quick test_write_skew_retry_succeeds;
        ] );
      ( "batch processing (Figure 2)",
        [
          Alcotest.test_case "occurs under snapshot isolation" `Quick test_batch_anomaly_under_si;
          Alcotest.test_case "prevented under SSI" `Quick test_batch_anomaly_under_ssi;
          Alcotest.test_case "allowed without read-only T1" `Quick
            test_batch_without_report_allowed;
        ] );
    ]
