(* B+-tree: model-based property tests against a sorted association list,
   structural invariants, split hooks and page reporting. *)

open Ssi_storage
module Btree = Ssi_btree.Btree

let vi i = Value.Int i

(* Reference model: sorted list of (key, pk) pairs. *)
module Model = struct
  let insert t k pk = List.sort_uniq compare ((k, pk) :: t)
  let delete t k pk = List.filter (fun e -> e <> (k, pk)) t
  let range t lo hi = List.filter (fun (k, _) -> k >= lo && k <= hi) (List.sort compare t)
end

type op = Ins of int * int | Del of int * int | Range of int * int

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun k pk -> Ins (k, pk)) (int_range 0 100) (int_range 0 5);
        map2 (fun k pk -> Del (k, pk)) (int_range 0 100) (int_range 0 5);
        map2 (fun a b -> Range (min a b, max a b)) (int_range 0 100) (int_range 0 100);
      ])

let print_op = function
  | Ins (k, pk) -> Printf.sprintf "Ins(%d,%d)" k pk
  | Del (k, pk) -> Printf.sprintf "Del(%d,%d)" k pk
  | Range (a, b) -> Printf.sprintf "Range(%d,%d)" a b

let ops_arb = QCheck.make ~print:QCheck.Print.(list print_op) QCheck.Gen.(list_size (int_range 0 400) op_gen)

let prop_model ~order =
  QCheck.Test.make
    ~name:(Printf.sprintf "btree(order=%d) matches model" order)
    ~count:60 ops_arb
    (fun ops ->
      let t = Btree.create ~order ~name:"m" () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Ins (k, pk) ->
              ignore (Btree.insert t ~key:(vi k) ~pk:(vi pk));
              model := Model.insert !model k pk;
              Btree.check_invariants t;
              true
          | Del (k, pk) ->
              let was = List.mem (k, pk) !model in
              let deleted = Btree.delete t ~key:(vi k) ~pk:(vi pk) in
              model := Model.delete !model k pk;
              Btree.check_invariants t;
              was = deleted
          | Range (lo, hi) ->
              let pages = ref [] in
              let got =
                List.map
                  (fun (k, pk) -> (Value.as_int k, Value.as_int pk))
                  (Btree.range t ~lo:(vi lo) ~hi:(vi hi) ~pages)
              in
              got = Model.range !model lo hi && !pages <> [])
        ops
      && Btree.cardinal t = List.length !model)

let test_idempotent_insert () =
  let t = Btree.create ~name:"i" () in
  let _, added1 = Btree.insert t ~key:(vi 1) ~pk:(vi 1) in
  let _, added2 = Btree.insert t ~key:(vi 1) ~pk:(vi 1) in
  Alcotest.(check bool) "first insert adds" true added1;
  Alcotest.(check bool) "second is a no-op" false added2;
  Alcotest.(check int) "cardinal" 1 (Btree.cardinal t)

let test_duplicate_keys_distinct_pks () =
  let t = Btree.create ~name:"d" () in
  List.iter (fun pk -> ignore (Btree.insert t ~key:(vi 7) ~pk:(vi pk))) [ 1; 2; 3 ];
  let pages = ref [] in
  Alcotest.(check int) "all pks under one key" 3 (List.length (Btree.lookup t (vi 7) ~pages))

let test_split_hook () =
  let t = Btree.create ~order:4 ~name:"s" () in
  let splits = ref [] in
  Btree.set_on_split t (fun ~old_page ~new_page -> splits := (old_page, new_page) :: !splits);
  for i = 1 to 50 do
    ignore (Btree.insert t ~key:(vi i) ~pk:(vi i))
  done;
  Alcotest.(check bool) "splits happened" true (List.length !splits > 5);
  Btree.check_invariants t;
  (* Every leaf page id must have appeared as a new_page (except the
     original page 0). *)
  let leaves = Btree.leaf_pages t in
  List.iter
    (fun lid ->
      if lid <> 0 then
        Alcotest.(check bool)
          (Printf.sprintf "page %d announced by split hook" lid)
          true
          (List.exists (fun (_, np) -> np = lid) !splits))
    leaves

let test_empty_range_reports_page () =
  (* Scanning an empty region still examines (and reports) the leaf that
     covers the gap — that page is what the SIREAD lock protects. *)
  let t = Btree.create ~name:"e" () in
  ignore (Btree.insert t ~key:(vi 10) ~pk:(vi 10));
  let pages = ref [] in
  let hits = Btree.range t ~lo:(vi 50) ~hi:(vi 60) ~pages in
  Alcotest.(check int) "no entries" 0 (List.length hits);
  Alcotest.(check bool) "gap page reported" true (!pages <> [])

let test_boundary_page_reported () =
  (* A scan that stops at an entry beyond [hi] reports that entry's page
     too: the gap just past [hi] is covered. *)
  let t = Btree.create ~order:4 ~name:"b" () in
  for i = 0 to 40 do
    ignore (Btree.insert t ~key:(vi i) ~pk:(vi i))
  done;
  let pages = ref [] in
  let hits = Btree.range t ~lo:(vi 5) ~hi:(vi 6) ~pages in
  Alcotest.(check int) "two entries" 2 (List.length hits);
  Alcotest.(check bool) "at least the covering page" true (List.length !pages >= 1)

let test_height_growth () =
  let t = Btree.create ~order:4 ~name:"h" () in
  Alcotest.(check int) "empty height" 1 (Btree.height t);
  for i = 1 to 200 do
    ignore (Btree.insert t ~key:(vi i) ~pk:(vi i))
  done;
  Alcotest.(check bool) "height grew" true (Btree.height t >= 3);
  Btree.check_invariants t

let test_iter_in_order () =
  let t = Btree.create ~order:4 ~name:"o" () in
  let keys = [ 5; 3; 9; 1; 7; 2; 8; 4; 6; 0 ] in
  List.iter (fun k -> ignore (Btree.insert t ~key:(vi k) ~pk:(vi k))) keys;
  let got = ref [] in
  Btree.iter t (fun k _ -> got := Value.as_int k :: !got);
  Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !got)

let test_mixed_value_types () =
  let t = Btree.create ~name:"v" () in
  ignore (Btree.insert t ~key:(Value.Str "b") ~pk:(vi 1));
  ignore (Btree.insert t ~key:(Value.Str "a") ~pk:(vi 2));
  let pages = ref [] in
  let hits = Btree.range t ~lo:(Value.Str "a") ~hi:(Value.Str "b") ~pages in
  Alcotest.(check int) "string keys" 2 (List.length hits)

let test_next_key_after () =
  let t = Btree.create ~order:4 ~name:"nk" () in
  List.iter (fun k -> ignore (Btree.insert t ~key:(vi k) ~pk:(vi k))) [ 10; 20; 20; 30 ];
  ignore (Btree.insert t ~key:(vi 20) ~pk:(vi 21)) (* duplicate index key *);
  let nk k = Btree.next_key_after t (vi k) in
  Alcotest.(check bool) "below all" true (nk 5 = Some (vi 10));
  Alcotest.(check bool) "skips duplicates" true (nk 20 = Some (vi 30));
  Alcotest.(check bool) "between" true (nk 15 = Some (vi 20));
  Alcotest.(check bool) "at top" true (nk 30 = None);
  Alcotest.(check bool) "above all" true (nk 99 = None)

let prop_next_key_model =
  QCheck.Test.make ~name:"next_key_after matches model" ~count:100
    QCheck.(list (int_range 0 50))
    (fun keys ->
      let t = Btree.create ~order:4 ~name:"nkm" () in
      List.iter (fun k -> ignore (Btree.insert t ~key:(vi k) ~pk:(vi k))) keys;
      let sorted = List.sort_uniq compare keys in
      List.for_all
        (fun probe ->
          let expected = List.find_opt (fun k -> k > probe) sorted in
          Btree.next_key_after t (vi probe) = Option.map vi expected)
        (List.init 52 (fun i -> i - 1)))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "btree"
    [
      qsuite "model" [ prop_model ~order:4; prop_model ~order:8; prop_model ~order:32 ];
      ( "structure",
        [
          Alcotest.test_case "idempotent insert" `Quick test_idempotent_insert;
          Alcotest.test_case "duplicate keys" `Quick test_duplicate_keys_distinct_pks;
          Alcotest.test_case "split hook" `Quick test_split_hook;
          Alcotest.test_case "empty range reports page" `Quick test_empty_range_reports_page;
          Alcotest.test_case "boundary page reported" `Quick test_boundary_page_reported;
          Alcotest.test_case "height growth" `Quick test_height_growth;
          Alcotest.test_case "iter in order" `Quick test_iter_in_order;
          Alcotest.test_case "string keys" `Quick test_mixed_value_types;
          Alcotest.test_case "next_key_after" `Quick test_next_key_after;
        ] );
      qsuite "next-key" [ prop_next_key_model ];
    ]
