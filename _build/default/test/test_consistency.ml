(* Cross-cutting consistency properties: a model-based property test of
   the engine's single-transaction semantics, primary/replica equivalence
   under random concurrent load, vacuum versus old snapshots, and the
   savepoint/WAL interplay. *)

open Ssi_storage
module E = Ssi_engine.Engine
module R = Ssi_replication.Replica
module Sim = Ssi_sim.Sim
module Rng = Ssi_util.Rng

let vi i = Value.Int i

(* ---- Model-based property: committed sequential semantics ------------------- *)

(* Random sequences of transactions, each a batch of operations, executed
   sequentially (no concurrency): the database must behave exactly like a
   map, including rolled-back transactions leaving no trace. *)

type mop = MIns of int * int | MUp of int * int | MDel of int | MAbort

let mop_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> MIns (k, v)) (int_range 0 20) (int_range 0 99));
        (4, map2 (fun k v -> MUp (k, v)) (int_range 0 20) (int_range 0 99));
        (2, map (fun k -> MDel k) (int_range 0 20));
        (1, return MAbort);
      ])

let print_mop = function
  | MIns (k, v) -> Printf.sprintf "Ins(%d,%d)" k v
  | MUp (k, v) -> Printf.sprintf "Up(%d,%d)" k v
  | MDel k -> Printf.sprintf "Del(%d)" k
  | MAbort -> "Abort"

let txns_arb =
  QCheck.make
    ~print:QCheck.Print.(list (list print_mop))
    QCheck.Gen.(list_size (int_range 0 20) (list_size (int_range 0 6) mop_gen))

exception Rollback

let prop_sequential_model isolation =
  QCheck.Test.make
    ~name:
      (Format.asprintf "sequential transactions behave like a map (%a)" E.pp_isolation
         isolation)
    ~count:60 txns_arb
    (fun txns ->
      let db = E.create () in
      E.create_table db ~name:"m" ~cols:[ "k"; "v" ] ~key:"k";
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun ops ->
          let staged = Hashtbl.copy model in
          try
            E.with_txn ~isolation db (fun t ->
                List.iter
                  (fun op ->
                    match op with
                    | MIns (k, v) -> (
                        try
                          E.insert t ~table:"m" [| vi k; vi v |];
                          Hashtbl.replace staged k v
                        with E.Duplicate_key _ -> assert (Hashtbl.mem staged k))
                    | MUp (k, v) ->
                        let updated =
                          E.update t ~table:"m" ~key:(vi k) ~f:(fun row -> [| row.(0); vi v |])
                        in
                        assert (updated = Hashtbl.mem staged k);
                        if updated then Hashtbl.replace staged k v
                    | MDel k ->
                        let deleted = E.delete t ~table:"m" ~key:(vi k) in
                        assert (deleted = Hashtbl.mem staged k);
                        if deleted then Hashtbl.remove staged k
                    | MAbort -> raise Rollback)
                  ops);
            Hashtbl.reset model;
            Hashtbl.iter (Hashtbl.replace model) staged
          with Rollback -> ())
        txns;
      (* Final state equals the model, via point reads and a scan. *)
      E.with_txn db (fun t ->
          let rows = E.seq_scan t ~table:"m" () in
          List.length rows = Hashtbl.length model
          && List.for_all
               (fun row ->
                 match Hashtbl.find_opt model (Value.as_int row.(0)) with
                 | Some v -> v = Value.as_int row.(1)
                 | None -> false)
               rows
          && Hashtbl.fold
               (fun k v acc ->
                 acc
                 &&
                 match E.read t ~table:"m" ~key:(vi k) with
                 | Some row -> Value.as_int row.(1) = v
                 | None -> false)
               model true))

(* ---- Primary / replica equivalence under concurrent load ---------------------- *)

let test_replica_equivalence () =
  let final_primary = ref [] in
  let final_replica = ref [] in
  ignore
    (Sim.run (fun () ->
         let config =
           {
             E.default_config with
             E.costs = { E.zero_costs with E.cpu_per_op = 50e-6; cpu_per_tuple = 2e-6 };
           }
         in
         let db = E.create ~scheduler:Sim.scheduler ~config () in
         E.create_table db ~name:"kv" ~cols:[ "k"; "v" ] ~key:"k";
         let replica = R.attach db in
         E.with_txn db (fun t ->
             for k = 0 to 9 do
               E.insert t ~table:"kv" [| vi k; vi 0 |]
             done);
         for w = 1 to 4 do
           let rng = Rng.make w in
           Sim.spawn (fun () ->
               for _ = 1 to 40 do
                 (try
                    E.retry ~max_attempts:5 db (fun t ->
                        let k = Rng.int rng 15 in
                        let p = Rng.float rng 1.0 in
                        if p < 0.5 then
                          ignore
                            (E.update t ~table:"kv" ~key:(vi k) ~f:(fun row ->
                                 [| row.(0); vi (Rng.int rng 1000) |]))
                        else if p < 0.75 then ignore (E.delete t ~table:"kv" ~key:(vi k))
                        else
                          try E.insert t ~table:"kv" [| vi k; vi (Rng.int rng 1000) |]
                          with E.Duplicate_key _ -> ())
                  with E.Serialization_failure _ | Ssi_util.Waitq.Would_block -> ());
                 Sim.delay 0.001
               done);
           Sim.spawn (fun () ->
               Sim.delay 0.5;
               let rows t =
                 List.sort compare
                   (List.map
                      (fun r -> (Value.as_int r.(0), Value.as_int r.(1)))
                      (E.seq_scan t ~table:"kv" ()))
               in
               final_primary := E.with_txn db (fun t -> rows t);
               final_replica :=
                 List.sort compare
                   (List.map
                      (fun r -> (Value.as_int r.(0), Value.as_int r.(1)))
                      (R.scan (R.begin_read replica `Latest_applied) ~table:"kv" ())))
         done));
  Alcotest.(check bool) "primary and replica converge to the same state" true
    (!final_primary = !final_replica && !final_primary <> [])

(* ---- Vacuum versus old snapshots ------------------------------------------------ *)

let test_vacuum_respects_old_snapshots () =
  let db = E.create () in
  E.create_table db ~name:"kv" ~cols:[ "k"; "v" ] ~key:"k";
  E.with_txn db (fun t -> E.insert t ~table:"kv" [| vi 1; vi 100 |]);
  let old_reader = E.begin_txn ~isolation:E.Repeatable_read db in
  ignore (E.read old_reader ~table:"kv" ~key:(vi 1));
  for i = 1 to 5 do
    E.with_txn db (fun t ->
        ignore (E.update t ~table:"kv" ~key:(vi 1) ~f:(fun row -> [| row.(0); vi (100 + i) |])))
  done;
  E.vacuum db;
  (match E.read old_reader ~table:"kv" ~key:(vi 1) with
  | Some row -> Alcotest.(check int) "old snapshot still sees its version" 100
      (Value.as_int row.(1))
  | None -> Alcotest.fail "vacuum removed a version visible to a live snapshot");
  E.commit old_reader;
  E.vacuum db;
  E.with_txn db (fun t ->
      match E.read t ~table:"kv" ~key:(vi 1) with
      | Some row -> Alcotest.(check int) "latest survives full vacuum" 105 (Value.as_int row.(1))
      | None -> Alcotest.fail "latest version lost")

(* ---- Savepoints and the WAL stream ----------------------------------------------- *)

let test_savepoint_rollback_not_replicated () =
  let db = E.create () in
  E.create_table db ~name:"kv" ~cols:[ "k"; "v" ] ~key:"k";
  let replica = R.attach db in
  E.with_txn db (fun t ->
      E.insert t ~table:"kv" [| vi 1; vi 1 |];
      E.savepoint t "sp";
      E.insert t ~table:"kv" [| vi 2; vi 2 |];
      ignore (E.update t ~table:"kv" ~key:(vi 1) ~f:(fun row -> [| row.(0); vi 99 |]));
      E.rollback_to_savepoint t "sp";
      E.insert t ~table:"kv" [| vi 3; vi 3 |]);
  let rt = R.begin_read replica `Latest_applied in
  Alcotest.(check bool) "kept insert shipped" true (R.read rt ~table:"kv" ~key:(vi 1) <> None);
  Alcotest.(check bool) "rolled-back insert not shipped" true
    (R.read rt ~table:"kv" ~key:(vi 2) = None);
  Alcotest.(check bool) "post-savepoint insert shipped" true
    (R.read rt ~table:"kv" ~key:(vi 3) <> None);
  match R.read rt ~table:"kv" ~key:(vi 1) with
  | Some row ->
      Alcotest.(check int) "rolled-back update not shipped" 1 (Value.as_int row.(1))
  | None -> Alcotest.fail "row missing"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "consistency"
    [
      qsuite "model"
        [
          prop_sequential_model E.Serializable;
          prop_sequential_model E.Repeatable_read;
          prop_sequential_model E.Read_committed;
          prop_sequential_model E.Serializable_2pl;
        ];
      ( "integration",
        [
          Alcotest.test_case "primary/replica equivalence" `Quick test_replica_equivalence;
          Alcotest.test_case "vacuum respects old snapshots" `Quick
            test_vacuum_respects_old_snapshots;
          Alcotest.test_case "savepoint rollback not replicated" `Quick
            test_savepoint_rollback_not_replicated;
        ] );
    ]
