(* Workload generators and the benchmark driver: smoke tests that each mix
   runs under the simulator in every concurrency-control mode, preserves
   its invariants, and produces sane measurements. *)

open Ssi_workload
module E = Ssi_engine.Engine

let small_bench mode =
  {
    Driver.default_bench with
    Driver.mode;
    workers = 4;
    duration = 0.3;
    warmup = 0.05;
    cpu_cores = 2;
  }

let check_result name r =
  Alcotest.(check bool) (name ^ ": committed transactions") true (r.Driver.committed > 0);
  Alcotest.(check bool)
    (name ^ ": failure rate sane")
    true
    (r.Driver.failure_rate >= 0. && r.Driver.failure_rate <= 1.)

let test_sibench_all_modes () =
  List.iter
    (fun mode ->
      let r =
        Driver.run ~setup:(Sibench.setup ~rows:40)
          ~specs:(Sibench.specs ~rows:40 ~chunk:10 ())
          (small_bench mode)
      in
      check_result (Driver.mode_name mode) r)
    Driver.all_modes

let test_sibench_query_correct () =
  (* The query transaction finds the true minimum. *)
  let db = E.create () in
  Sibench.setup ~rows:100 db;
  let k, v = E.with_txn db (fun t -> Sibench.query_min ~rows:100 ~chunk:17 t) in
  let expected =
    E.with_txn db (fun t ->
        List.fold_left
          (fun acc row -> min acc (Ssi_storage.Value.as_int row.(1)))
          max_int
          (E.seq_scan t ~table:Sibench.table ()))
  in
  Alcotest.(check int) "minimum value" expected v;
  Alcotest.(check bool) "key in range" true (k >= 0 && k < 100)

let test_tpcc_all_modes () =
  List.iter
    (fun mode ->
      let r =
        Driver.run
          ~setup:(Tpcc.setup ~warehouses:2)
          ~specs:(Tpcc.specs ~warehouses:2 ~ro_fraction:0.3)
          (small_bench mode)
      in
      check_result (Driver.mode_name mode) r)
    Driver.all_modes

let test_tpcc_consistency () =
  (* After a run, every order has its order lines and district counters
     cover all orders. *)
  let db = E.create () in
  Tpcc.setup ~warehouses:1 db;
  let rng = Ssi_util.Rng.make 3 in
  for _ = 1 to 30 do
    E.retry db (fun t -> Tpcc.new_order rng ~warehouses:1 t);
    E.retry db (fun t -> Tpcc.payment rng ~warehouses:1 t);
    E.retry db (fun t -> Tpcc.delivery rng ~warehouses:1 t)
  done;
  E.with_txn db (fun t ->
      let orders = E.seq_scan t ~table:"orders" () in
      Alcotest.(check bool) "orders exist" true (List.length orders > 0);
      List.iter
        (fun orow ->
          let okey = Ssi_storage.Value.as_int orow.(0) in
          let nlines = Ssi_storage.Value.as_int orow.(3) in
          let lines =
            E.index_scan t ~table:"order_line" ~index:"order_line_pkey"
              ~lo:(Ssi_storage.Value.Int (okey * 20))
              ~hi:(Ssi_storage.Value.Int ((okey * 20) + 19))
          in
          Alcotest.(check int)
            (Printf.sprintf "order %d line count" okey)
            nlines (List.length lines))
        orders)

let test_rubis_all_modes () =
  List.iter
    (fun mode ->
      let r =
        Driver.run
          ~setup:(Rubis.setup ~users:50 ~items:60)
          ~specs:(Rubis.specs ~users:50 ~items:60)
          (small_bench mode)
      in
      check_result (Driver.mode_name mode) r)
    Driver.all_modes

let test_rubis_bid_monotone () =
  (* nb_bids matches the bids table after a sequence of bid placements. *)
  let db = E.create () in
  Rubis.setup ~users:20 ~items:10 db;
  let rng = Ssi_util.Rng.make 5 in
  for _ = 1 to 50 do
    E.retry db (fun t -> Rubis.place_bid rng ~users:20 ~items:10 t)
  done;
  E.with_txn db (fun t ->
      let items = E.seq_scan t ~table:"items" () in
      let total_bids =
        List.fold_left (fun acc row -> acc + Ssi_storage.Value.as_int row.(4)) 0 items
      in
      let bids = E.seq_scan t ~table:"bids" () in
      Alcotest.(check int) "bid count consistent" (List.length bids) total_bids)

let test_deterministic () =
  (* Same seed, same result — the whole stack is deterministic. *)
  let go () =
    Driver.run ~setup:(Sibench.setup ~rows:30)
      ~specs:(Sibench.specs ~rows:30 ~chunk:10 ())
      (small_bench Driver.SSI)
  in
  let a = go () and b = go () in
  Alcotest.(check int) "same commit count" a.Driver.committed b.Driver.committed;
  Alcotest.(check int) "same failures" a.Driver.failures b.Driver.failures

let () =
  Alcotest.run "workload"
    [
      ( "sibench",
        [
          Alcotest.test_case "all modes run" `Quick test_sibench_all_modes;
          Alcotest.test_case "query finds minimum" `Quick test_sibench_query_correct;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "all modes run" `Quick test_tpcc_all_modes;
          Alcotest.test_case "order lines consistent" `Quick test_tpcc_consistency;
        ] );
      ( "rubis",
        [
          Alcotest.test_case "all modes run" `Quick test_rubis_all_modes;
          Alcotest.test_case "bid counters consistent" `Quick test_rubis_bid_monotone;
        ] );
      ("driver", [ Alcotest.test_case "deterministic" `Quick test_deterministic ]);
    ]
