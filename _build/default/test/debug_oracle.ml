(* Developer tool: replay one oracle seed with engine/lock tracing on
   stderr and print any serialization-graph cycle found.

     dune exec test/debug_oracle.exe -- <seed> [ssi]    (default: S2PL)   *)

open Test_oracle
module E = Ssi_engine.Engine

let () =
  let seed = try int_of_string Sys.argv.(1) with _ -> 39 in
  let iso =
    if Array.length Sys.argv > 2 && Sys.argv.(2) = "ssi" then E.Serializable
    else E.Serializable_2pl
  in
  let cfg = { Oracle.default_cfg with Oracle.seed } in
  let h = Oracle.run_history ~tracer:prerr_endline ~isolation:iso cfg in
  (match Oracle.check_serializable h with
  | Ok () -> print_endline "serializable (no repro)"
  | Error cycle -> print_string (Oracle.pp_cycle h cycle))
