(* Storage substrate: values, schemas, and the versioned heap. *)

open Ssi_storage

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ---- Value -------------------------------------------------------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1000.);
        map (fun s -> Value.Str s) (string_size (int_range 0 6));
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    QCheck.(pair value_arb value_arb)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let prop_equal_hash =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500
    QCheck.(pair value_arb value_arb)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let test_numeric_cross_type () =
  Alcotest.(check bool) "Int = Float" true (Value.equal (Value.Int 3) (Value.Float 3.));
  Alcotest.(check int) "hash compatible" (Value.hash (Value.Int 3))
    (Value.hash (Value.Float 3.));
  Alcotest.(check bool) "Int < Float" true
    (Value.compare (Value.Int 3) (Value.Float 3.5) < 0)

let test_value_rank_order () =
  Alcotest.(check bool) "Null < Bool" true (Value.compare Value.Null (Value.Bool false) < 0);
  Alcotest.(check bool) "Bool < Int" true (Value.compare (Value.Bool true) (Value.Int 0) < 0);
  Alcotest.(check bool) "Int < Str" true (Value.compare (Value.Int 999) (Value.Str "") < 0)

let test_accessors () =
  Alcotest.(check int) "as_int" 5 (Value.as_int (Value.Int 5));
  Alcotest.(check (float 0.)) "as_float of int" 5. (Value.as_float (Value.Int 5));
  Alcotest.check_raises "as_int of Str" (Invalid_argument "Value.as_int: \"x\"") (fun () ->
      ignore (Value.as_int (Value.Str "x")))

(* ---- Schema -------------------------------------------------------------- *)

let test_schema_basics () =
  let s = Schema.make ~name:"t" ~cols:[ "a"; "b"; "c" ] ~key:"b" in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check int) "key index" 1 (Schema.key_index s);
  Alcotest.(check int) "column index" 2 (Schema.column_index s "c");
  Alcotest.(check bool) "key_of_row" true
    (Value.equal (Value.Int 7)
       (Schema.key_of_row s [| Value.Null; Value.Int 7; Value.Null |]))

let test_schema_errors () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.make: duplicate column a") (fun () ->
      ignore (Schema.make ~name:"t" ~cols:[ "a"; "a" ] ~key:"a"));
  Alcotest.check_raises "unknown key" (Invalid_argument "Schema.make: unknown key column z")
    (fun () -> ignore (Schema.make ~name:"t" ~cols:[ "a" ] ~key:"z"));
  let s = Schema.make ~name:"t" ~cols:[ "a" ] ~key:"a" in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Schema.check_row: table t expects 1 columns, got 2") (fun () ->
      Schema.check_row s [| Value.Null; Value.Null |])

(* ---- Heap ------------------------------------------------------------------ *)

let schema = Schema.make ~name:"h" ~cols:[ "k"; "v" ] ~key:"k"
let row k v = [| Value.Int k; Value.Int v |]

let test_heap_version_chain () =
  let h = Heap.create schema in
  let v1 = Heap.insert_version h ~key:(Value.Int 1) ~row:(row 1 10) ~xmin:5 in
  Heap.set_xmax v1 6;
  let v2 = Heap.insert_version h ~key:(Value.Int 1) ~row:(row 1 20) ~xmin:6 in
  (match Heap.head h (Value.Int 1) with
  | Some head ->
      Alcotest.(check bool) "head is newest" true (head == v2);
      Alcotest.(check int) "chain length" 2 (List.length (List.of_seq (Heap.versions head)))
  | None -> Alcotest.fail "missing head");
  Alcotest.(check int) "cardinal" 1 (Heap.cardinal h)

let test_heap_unlink () =
  let h = Heap.create schema in
  let v1 = Heap.insert_version h ~key:(Value.Int 1) ~row:(row 1 10) ~xmin:5 in
  ignore (Heap.insert_version h ~key:(Value.Int 1) ~row:(row 1 20) ~xmin:6);
  Heap.unlink_head h (Value.Int 1);
  (match Heap.head h (Value.Int 1) with
  | Some head -> Alcotest.(check bool) "old version restored" true (head == v1)
  | None -> Alcotest.fail "chain vanished");
  Heap.unlink_head h (Value.Int 1);
  Alcotest.(check bool) "empty" true (Heap.head h (Value.Int 1) = None);
  Alcotest.check_raises "unlink empty" (Invalid_argument "Heap.unlink_head: no versions for key")
    (fun () -> Heap.unlink_head h (Value.Int 1))

let test_heap_pages () =
  let h = Heap.create ~tuples_per_page:4 schema in
  let pages =
    List.init 10 (fun i ->
        let t = Heap.insert_version h ~key:(Value.Int i) ~row:(row i 0) ~xmin:1 in
        Heap.page_of_tid t.Heap.tid)
  in
  Alcotest.(check int) "npages" 3 (Heap.npages h);
  Alcotest.(check (list int))
    "page assignment" [ 0; 0; 0; 0; 1; 1; 1; 1; 2; 2 ]
    pages

let test_heap_rewrite () =
  let h = Heap.create ~tuples_per_page:4 schema in
  let t0 = Heap.insert_version h ~key:(Value.Int 0) ~row:(row 0 0) ~xmin:1 in
  for i = 1 to 7 do
    ignore (Heap.insert_version h ~key:(Value.Int i) ~row:(row i 0) ~xmin:1)
  done;
  let gen0 = Heap.generation h in
  let old_tid = t0.Heap.tid in
  Heap.rewrite h;
  Alcotest.(check int) "generation bumped" (gen0 + 1) (Heap.generation h);
  Alcotest.(check bool) "relocated (or at least reassigned)" true
    (Heap.head h (Value.Int 0) <> None);
  ignore old_tid;
  (* All tids must be unique after the rewrite. *)
  let tids = ref [] in
  Heap.iter_heads h (fun t -> tids := t.Heap.tid :: !tids);
  let sorted = List.sort_uniq compare !tids in
  Alcotest.(check int) "unique tids" 8 (List.length sorted)

let test_heap_prune () =
  let h = Heap.create schema in
  let v1 = Heap.insert_version h ~key:(Value.Int 1) ~row:(row 1 10) ~xmin:2 in
  Heap.set_xmax v1 3;
  let v2 = Heap.insert_version h ~key:(Value.Int 1) ~row:(row 1 20) ~xmin:3 in
  Heap.set_xmax v2 4;
  ignore (Heap.insert_version h ~key:(Value.Int 1) ~row:(row 1 30) ~xmin:4);
  (* Keep only the newest two versions. *)
  Heap.prune h ~live:(fun v -> v.Heap.xmin >= 3);
  match Heap.head h (Value.Int 1) with
  | None -> Alcotest.fail "chain vanished"
  | Some head ->
      Alcotest.(check int) "pruned chain" 2 (List.length (List.of_seq (Heap.versions head)))

let test_heap_fold_iter () =
  let h = Heap.create schema in
  for i = 0 to 9 do
    ignore (Heap.insert_version h ~key:(Value.Int i) ~row:(row i i) ~xmin:1)
  done;
  let sum = Heap.fold_heads h ~init:0 ~f:(fun acc t -> acc + Value.as_int t.Heap.row.(1)) in
  Alcotest.(check int) "fold over heads" 45 sum;
  let n = ref 0 in
  Heap.iter_heads h (fun _ -> incr n);
  Alcotest.(check int) "iter count" 10 !n

let () =
  Alcotest.run "storage"
    [
      ( "value",
        [
          Alcotest.test_case "numeric cross-type" `Quick test_numeric_cross_type;
          Alcotest.test_case "rank order" `Quick test_value_rank_order;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      qsuite "value-props" [ prop_compare_total_order; prop_equal_hash ];
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "errors" `Quick test_schema_errors;
        ] );
      ( "heap",
        [
          Alcotest.test_case "version chain" `Quick test_heap_version_chain;
          Alcotest.test_case "unlink head" `Quick test_heap_unlink;
          Alcotest.test_case "page assignment" `Quick test_heap_pages;
          Alcotest.test_case "rewrite relocates" `Quick test_heap_rewrite;
          Alcotest.test_case "prune" `Quick test_heap_prune;
          Alcotest.test_case "fold/iter" `Quick test_heap_fold_iter;
        ] );
    ]
