(* Savepoints and subtransactions (§7.3): data rollback, nested
   savepoints, SIREAD-lock retention across subtransaction rollback, and
   the disabled drop-own-SIREAD optimization inside subtransactions. *)

open Ssi_storage
module E = Ssi_engine.Engine

let vi i = Value.Int i

let fresh () =
  let db = E.create () in
  E.create_table db ~name:"kv" ~cols:[ "k"; "v" ] ~key:"k";
  E.with_txn db (fun t ->
      for k = 0 to 4 do
        E.insert t ~table:"kv" [| vi k; vi 0 |]
      done);
  db

let bump t k = ignore (E.update t ~table:"kv" ~key:(vi k) ~f:(fun r -> [| r.(0); vi 1 |]))

let value t k =
  match E.read t ~table:"kv" ~key:(vi k) with
  | Some row -> Value.as_int row.(1)
  | None -> -1

let test_rollback_restores_data () =
  let db = fresh () in
  E.with_txn db (fun t ->
      bump t 1;
      E.savepoint t "sp";
      bump t 2;
      E.insert t ~table:"kv" [| vi 9; vi 9 |];
      ignore (E.delete t ~table:"kv" ~key:(vi 3));
      E.rollback_to_savepoint t "sp";
      Alcotest.(check int) "pre-savepoint write kept" 1 (value t 1);
      Alcotest.(check int) "update undone" 0 (value t 2);
      Alcotest.(check int) "insert undone" (-1) (value t 9);
      Alcotest.(check int) "delete undone" 0 (value t 3));
  E.with_txn db (fun t ->
      Alcotest.(check int) "committed state" 1 (value t 1);
      Alcotest.(check int) "no phantom 9" (-1) (value t 9))

let test_savepoint_survives_rollback () =
  (* SQL semantics: ROLLBACK TO leaves the savepoint defined. *)
  let db = fresh () in
  E.with_txn db (fun t ->
      E.savepoint t "sp";
      bump t 1;
      E.rollback_to_savepoint t "sp";
      bump t 2;
      E.rollback_to_savepoint t "sp";
      Alcotest.(check int) "second rollback also works" 0 (value t 2))

let test_nested_savepoints () =
  let db = fresh () in
  E.with_txn db (fun t ->
      E.savepoint t "outer";
      bump t 1;
      E.savepoint t "inner";
      bump t 2;
      E.rollback_to_savepoint t "outer" (* destroys "inner" *);
      Alcotest.(check int) "inner write undone" 0 (value t 2);
      Alcotest.(check int) "outer write undone" 0 (value t 1);
      Alcotest.check_raises "inner destroyed" (Invalid_argument "Engine: no such savepoint inner")
        (fun () -> E.rollback_to_savepoint t "inner"))

let test_release_savepoint () =
  let db = fresh () in
  E.with_txn db (fun t ->
      E.savepoint t "sp";
      bump t 1;
      E.release_savepoint t "sp";
      Alcotest.(check int) "write kept" 1 (value t 1);
      Alcotest.check_raises "released" (Invalid_argument "Engine: no such savepoint sp")
        (fun () -> E.rollback_to_savepoint t "sp"));
  E.with_txn db (fun t -> Alcotest.(check int) "committed" 1 (value t 1))

let test_siread_survives_subxact_rollback () =
  (* §7.3: reads made inside an aborted subtransaction may have been
     externalized, so their SIREAD locks are retained — the conflict is
     still detected. *)
  let db = fresh () in
  let t1 = E.begin_txn db in
  E.savepoint t1 "sp";
  ignore (E.read t1 ~table:"kv" ~key:(vi 1)) (* read inside the subtransaction *);
  E.rollback_to_savepoint t1 "sp";
  (* A concurrent writer overwrites the read tuple, then gains a committed
     out-edge: t1 -> w -> t3 with t3 committing first must fail. *)
  let w = E.begin_txn db in
  bump w 1;
  ignore (E.read w ~table:"kv" ~key:(vi 2));
  let t3 = E.begin_txn db in
  bump t3 2;
  E.commit t3;
  (try
     E.commit w;
     Alcotest.fail "SIREAD from rolled-back subtransaction was lost"
   with E.Serialization_failure _ -> ());
  E.commit t1

let test_own_write_lock_opt_disabled_in_subxact () =
  (* §7.3: normally a transaction that updates a tuple it read can drop
     its SIREAD lock (the write lock protects it).  Inside a
     subtransaction that is later rolled back, the write lock vanishes —
     so the SIREAD lock must have been kept. *)
  let db = fresh () in
  let t1 = E.begin_txn db in
  ignore (E.read t1 ~table:"kv" ~key:(vi 1));
  E.savepoint t1 "sp";
  bump t1 1 (* would normally drop the SIREAD lock on key 1 *);
  E.rollback_to_savepoint t1 "sp" (* write lock gone *);
  (* Concurrent writer of key 1 must still conflict with t1's read. *)
  let w = E.begin_txn db in
  bump w 1;
  ignore (E.read w ~table:"kv" ~key:(vi 2));
  let t3 = E.begin_txn db in
  bump t3 2;
  E.commit t3;
  (try
     E.commit w;
     Alcotest.fail "SIREAD lock dropped inside subtransaction"
   with E.Serialization_failure _ -> ());
  E.commit t1

let test_own_write_lock_opt_enabled_at_top_level () =
  (* The same sequence WITHOUT a savepoint: the optimization applies, the
     SIREAD lock is dropped, and the writer never even conflicts with t1
     (its own write lock blocks the writer instead). *)
  let db = fresh () in
  let t1 = E.begin_txn db in
  ignore (E.read t1 ~table:"kv" ~key:(vi 1));
  bump t1 1;
  E.commit t1;
  let w = E.begin_txn db in
  bump w 1;
  ignore (E.read w ~table:"kv" ~key:(vi 2));
  let t3 = E.begin_txn db in
  bump t3 2;
  E.commit t3;
  (* t1 committed before w's writes; its dropped tuple SIREAD lock means
     no t1 -> w edge from key 1, so w has no dangerous in-edge. *)
  E.commit w

let test_unknown_savepoint () =
  let db = fresh () in
  E.with_txn db (fun t ->
      Alcotest.check_raises "unknown" (Invalid_argument "Engine: no such savepoint nope")
        (fun () -> E.rollback_to_savepoint t "nope"))

let () =
  Alcotest.run "subxact"
    [
      ( "savepoints",
        [
          Alcotest.test_case "rollback restores data" `Quick test_rollback_restores_data;
          Alcotest.test_case "savepoint survives rollback" `Quick
            test_savepoint_survives_rollback;
          Alcotest.test_case "nested" `Quick test_nested_savepoints;
          Alcotest.test_case "release" `Quick test_release_savepoint;
          Alcotest.test_case "unknown name" `Quick test_unknown_savepoint;
        ] );
      ( "ssi interactions (§7.3)",
        [
          Alcotest.test_case "SIREAD survives subxact rollback" `Quick
            test_siread_survives_subxact_rollback;
          Alcotest.test_case "drop-own-SIREAD disabled in subxact" `Quick
            test_own_write_lock_opt_disabled_in_subxact;
          Alcotest.test_case "drop-own-SIREAD active at top level" `Quick
            test_own_write_lock_opt_enabled_at_top_level;
        ] );
    ]
