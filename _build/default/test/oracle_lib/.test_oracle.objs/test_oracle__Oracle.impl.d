test/oracle_lib/oracle.ml: Array Buffer Hashtbl Int List Map Printf Ssi_core Ssi_engine Ssi_sim Ssi_storage Ssi_util String Value
