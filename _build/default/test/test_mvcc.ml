(* MVCC: commit log, snapshots and tuple visibility — including the
   rw-conflict information extracted during visibility checks (§5.2). *)

open Ssi_storage
module Mvcc = Ssi_mvcc.Mvcc
module Clog = Mvcc.Clog
module Snapshot = Mvcc.Snapshot
module Visibility = Mvcc.Visibility

let schema = Schema.make ~name:"t" ~cols:[ "k"; "v" ] ~key:"k"
let row k = [| Value.Int k; Value.Int 0 |]

(* ---- Clog ------------------------------------------------------------------ *)

let test_clog_lifecycle () =
  let c = Clog.create () in
  let x1 = Clog.new_xid c and x2 = Clog.new_xid c in
  Alcotest.(check bool) "distinct xids" true (x1 <> x2);
  Alcotest.(check bool) "in progress" true (Clog.status c x1 = Clog.In_progress);
  let cs1 = Clog.commit c x1 in
  Clog.abort c x2;
  Alcotest.(check bool) "committed" true (Clog.status c x1 = Clog.Committed cs1);
  Alcotest.(check bool) "aborted" true (Clog.status c x2 = Clog.Aborted);
  Alcotest.(check bool) "is_committed" true (Clog.is_committed c x1);
  Alcotest.(check bool) "aborted not committed" false (Clog.is_committed c x2);
  Alcotest.(check int) "commit_cseq" cs1 (Clog.commit_cseq c x1);
  Alcotest.(check int) "commit_cseq of aborted" Mvcc.invalid_cseq (Clog.commit_cseq c x2)

let test_clog_cseq_monotone () =
  let c = Clog.create () in
  let xs = List.init 5 (fun _ -> Clog.new_xid c) in
  let cseqs = List.map (Clog.commit c) xs in
  Alcotest.(check (list int)) "monotone" (List.sort compare cseqs) cseqs

let test_clog_double_resolution () =
  let c = Clog.create () in
  let x = Clog.new_xid c in
  ignore (Clog.commit c x);
  Alcotest.check_raises "commit twice"
    (Invalid_argument "Clog.commit: transaction already resolved") (fun () ->
      ignore (Clog.commit c x));
  Alcotest.check_raises "abort after commit"
    (Invalid_argument "Clog.abort: transaction already resolved") (fun () -> Clog.abort c x)

let test_clog_unknown () =
  let c = Clog.create () in
  Alcotest.check_raises "unknown xid" (Invalid_argument "Clog.status: unknown xid 99")
    (fun () -> ignore (Clog.status c 99))

(* ---- Snapshots ---------------------------------------------------------------- *)

let test_snapshot_sees () =
  let c = Clog.create () in
  let writer = Clog.new_xid c in
  ignore (Clog.commit c writer);
  let reader = Clog.new_xid c in
  let snap = Snapshot.take c ~owner:reader in
  let late_writer = Clog.new_xid c in
  ignore (Clog.commit c late_writer);
  Alcotest.(check bool) "sees earlier commit" true (Snapshot.sees_xid c snap writer);
  Alcotest.(check bool) "does not see later commit" false
    (Snapshot.sees_xid c snap late_writer);
  Alcotest.(check bool) "sees itself" true (Snapshot.sees_xid c snap reader)

(* ---- Visibility ----------------------------------------------------------------- *)

(* A tiny fixture: [committed_before] is a committed transaction visible in
   the snapshot; [concurrent] is one that commits after it. *)
let fixture () =
  let c = Clog.create () in
  let heap = Heap.create schema in
  let before = Clog.new_xid c in
  ignore (Clog.commit c before);
  let reader = Clog.new_xid c in
  let snap = Snapshot.take c ~owner:reader in
  (c, heap, before, reader, snap)

let test_visible_plain () =
  let c, heap, before, _, snap = fixture () in
  let t = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:before in
  Alcotest.(check bool) "visible, no conflict" true
    (Visibility.check c snap t = Visibility.Visible None)

let test_invisible_future_creator () =
  let c, heap, _, _, snap = fixture () in
  let w = Clog.new_xid c in
  let t = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:w in
  (* In-progress creator: invisible, and a conflict out to the creator. *)
  Alcotest.(check bool) "in-progress creator conflicts" true
    (Visibility.check c snap t = Visibility.Invisible (Some w));
  ignore (Clog.commit c w);
  Alcotest.(check bool) "committed-after-snapshot creator conflicts" true
    (Visibility.check c snap t = Visibility.Invisible (Some w))

let test_invisible_aborted_creator () =
  let c, heap, _, _, snap = fixture () in
  let w = Clog.new_xid c in
  Clog.abort c w;
  let t = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:w in
  Alcotest.(check bool) "aborted creator: no conflict" true
    (Visibility.check c snap t = Visibility.Invisible None)

let test_visible_with_concurrent_deleter () =
  let c, heap, before, _, snap = fixture () in
  let t = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:before in
  let deleter = Clog.new_xid c in
  Heap.set_xmax t deleter;
  Alcotest.(check bool) "still visible, conflict out to deleter" true
    (Visibility.check c snap t = Visibility.Visible (Some deleter));
  ignore (Clog.commit c deleter);
  Alcotest.(check bool) "deleter committed after snapshot: same" true
    (Visibility.check c snap t = Visibility.Visible (Some deleter))

let test_deleted_before_snapshot () =
  let c = Clog.create () in
  let heap = Heap.create schema in
  let creator = Clog.new_xid c in
  ignore (Clog.commit c creator);
  let deleter = Clog.new_xid c in
  let t = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:creator in
  Heap.set_xmax t deleter;
  ignore (Clog.commit c deleter);
  let reader = Clog.new_xid c in
  let snap = Snapshot.take c ~owner:reader in
  Alcotest.(check bool) "cleanly deleted: invisible, no conflict" true
    (Visibility.check c snap t = Visibility.Invisible None)

let test_own_writes () =
  let c, heap, _, reader, snap = fixture () in
  let t = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:reader in
  Alcotest.(check bool) "own insert visible" true
    (Visibility.check c snap t = Visibility.Visible None);
  Heap.set_xmax t reader;
  Alcotest.(check bool) "own delete invisible" true
    (Visibility.check c snap t = Visibility.Invisible None)

let test_aborted_deleter_ignored () =
  let c, heap, before, _, snap = fixture () in
  let t = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:before in
  let deleter = Clog.new_xid c in
  Heap.set_xmax t deleter;
  Clog.abort c deleter;
  Alcotest.(check bool) "aborted deleter: visible, no conflict" true
    (Visibility.check c snap t = Visibility.Visible None)

let test_latest_visible_walk () =
  let c, heap, before, _, snap = fixture () in
  (* Chain: v1 (visible) <- v2 (concurrent writer w). *)
  let v1 = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:before in
  let w = Clog.new_xid c in
  Heap.set_xmax v1 w;
  let v2 = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:w in
  ignore (Clog.commit c w);
  match Visibility.latest_visible c snap v2 with
  | Some (t, deleter), conflicts ->
      Alcotest.(check bool) "found the old version" true (t == v1);
      Alcotest.(check bool) "deleter conflict" true (deleter = Some w);
      Alcotest.(check (list int)) "creator conflict collected on the way" [ w ] conflicts
  | None, _ -> Alcotest.fail "no visible version"

let test_latest_visible_none () =
  let c, heap, _, _, snap = fixture () in
  let w = Clog.new_xid c in
  let v = Heap.insert_version heap ~key:(Value.Int 1) ~row:(row 1) ~xmin:w in
  ignore (Clog.commit c w);
  match Visibility.latest_visible c snap v with
  | None, conflicts -> Alcotest.(check (list int)) "conflict out" [ w ] conflicts
  | Some _, _ -> Alcotest.fail "should be invisible"

let () =
  Alcotest.run "mvcc"
    [
      ( "clog",
        [
          Alcotest.test_case "lifecycle" `Quick test_clog_lifecycle;
          Alcotest.test_case "cseq monotone" `Quick test_clog_cseq_monotone;
          Alcotest.test_case "double resolution" `Quick test_clog_double_resolution;
          Alcotest.test_case "unknown xid" `Quick test_clog_unknown;
        ] );
      ("snapshot", [ Alcotest.test_case "sees" `Quick test_snapshot_sees ]);
      ( "visibility",
        [
          Alcotest.test_case "plain visible" `Quick test_visible_plain;
          Alcotest.test_case "future creator" `Quick test_invisible_future_creator;
          Alcotest.test_case "aborted creator" `Quick test_invisible_aborted_creator;
          Alcotest.test_case "concurrent deleter" `Quick test_visible_with_concurrent_deleter;
          Alcotest.test_case "deleted before snapshot" `Quick test_deleted_before_snapshot;
          Alcotest.test_case "own writes" `Quick test_own_writes;
          Alcotest.test_case "aborted deleter" `Quick test_aborted_deleter_ignored;
          Alcotest.test_case "latest_visible walk" `Quick test_latest_visible_walk;
          Alcotest.test_case "latest_visible none" `Quick test_latest_visible_none;
        ] );
    ]
