(* Heavyweight lock manager: compatibility matrix, blocking under the
   simulator, FIFO fairness, deadlock detection, release. *)

open Ssi_storage
module Lockmgr = Ssi_lockmgr.Lockmgr
module Sim = Ssi_sim.Sim
open Lockmgr

let rel = Relation "t"
let tup k = Tuple ("t", Value.Int k)

(* ---- Matrix ------------------------------------------------------------------ *)

let test_compat_matrix () =
  let cases =
    [
      (IS, IS, true); (IS, IX, true); (IS, S, true); (IS, SIX, true); (IS, X, false);
      (IX, IX, true); (IX, S, false); (IX, SIX, false); (IX, X, false);
      (S, S, true); (S, SIX, false); (S, X, false);
      (SIX, SIX, false); (SIX, X, false);
      (X, X, false);
    ]
  in
  List.iter
    (fun (a, b, expect) ->
      let name = Format.asprintf "%a/%a" pp_mode a pp_mode b in
      Alcotest.(check bool) name expect (compatible a b);
      Alcotest.(check bool) (name ^ " symmetric") expect (compatible b a))
    cases

let test_covers () =
  Alcotest.(check bool) "X covers S" true (covers X S);
  Alcotest.(check bool) "SIX covers S" true (covers SIX S);
  Alcotest.(check bool) "SIX covers IX" true (covers SIX IX);
  Alcotest.(check bool) "S does not cover IX" false (covers S IX);
  Alcotest.(check bool) "IS covers only IS" true (covers IS IS && not (covers IS S))

(* ---- Direct (non-blocking) use ----------------------------------------------- *)

let test_grant_and_reacquire () =
  let lm = create Ssi_util.Waitq.direct in
  acquire lm ~owner:1 rel IS;
  acquire lm ~owner:1 rel IS;
  acquire lm ~owner:2 rel IX;
  Alcotest.(check int) "two holdings" 2 (lock_count lm);
  Alcotest.(check bool) "holds" true (holds lm ~owner:1 rel IS);
  Alcotest.(check bool) "covered request is no-op" true
    (try_acquire lm ~owner:1 rel IS)

let test_direct_conflict_raises () =
  let lm = create Ssi_util.Waitq.direct in
  acquire lm ~owner:1 (tup 1) X;
  Alcotest.check_raises "would block" Ssi_util.Waitq.Would_block (fun () ->
      acquire lm ~owner:2 (tup 1) S)

let test_try_acquire () =
  let lm = create Ssi_util.Waitq.direct in
  acquire lm ~owner:1 (tup 1) X;
  Alcotest.(check bool) "try fails on conflict" false (try_acquire lm ~owner:2 (tup 1) S);
  Alcotest.(check bool) "try succeeds elsewhere" true (try_acquire lm ~owner:2 (tup 2) S)

let test_release_all () =
  let lm = create Ssi_util.Waitq.direct in
  acquire lm ~owner:1 rel IX;
  acquire lm ~owner:1 (tup 1) X;
  acquire lm ~owner:1 (tup 2) X;
  release_all lm ~owner:1;
  Alcotest.(check int) "all gone" 0 (lock_count lm);
  Alcotest.(check bool) "free again" true (try_acquire lm ~owner:2 (tup 1) X)

(* ---- Blocking under the simulator ----------------------------------------------- *)

let test_blocking_grant () =
  let events = ref [] in
  ignore
    (Sim.run (fun () ->
         let lm = create Sim.scheduler in
         Sim.spawn (fun () ->
             acquire lm ~owner:1 (tup 1) X;
             Sim.delay 2.0;
             release_all lm ~owner:1;
             events := ("released", Sim.now ()) :: !events);
         Sim.spawn (fun () ->
             Sim.delay 0.5;
             acquire lm ~owner:2 (tup 1) S;
             events := ("granted", Sim.now ()) :: !events)));
  Alcotest.(check bool) "reader waited for writer" true
    (List.assoc "granted" !events >= 2.0)

let test_fifo_no_starvation () =
  (* S, then X waits, then another S: the second S must queue behind the X
     rather than overtaking it. *)
  let order = ref [] in
  ignore
    (Sim.run (fun () ->
         let lm = create Sim.scheduler in
         Sim.spawn (fun () ->
             acquire lm ~owner:1 (tup 1) S;
             Sim.delay 1.0;
             release_all lm ~owner:1);
         Sim.spawn (fun () ->
             Sim.delay 0.1;
             acquire lm ~owner:2 (tup 1) X;
             order := 2 :: !order;
             Sim.delay 0.5;
             release_all lm ~owner:2);
         Sim.spawn (fun () ->
             Sim.delay 0.2;
             acquire lm ~owner:3 (tup 1) S;
             order := 3 :: !order;
             release_all lm ~owner:3)));
  Alcotest.(check (list int)) "writer first" [ 2; 3 ] (List.rev !order)

let test_deadlock_detected () =
  (* Owner 1 waits for owner 2 first; when owner 2's request would close
     the cycle, owner 2 (the requester) is the victim. *)
  let deadlocked = ref None in
  ignore
    (Sim.run (fun () ->
         let lm = create Sim.scheduler in
         Sim.spawn (fun () ->
             acquire lm ~owner:1 (tup 1) X;
             Sim.delay 0.2;
             acquire lm ~owner:1 (tup 2) X;
             release_all lm ~owner:1);
         Sim.spawn (fun () ->
             acquire lm ~owner:2 (tup 2) X;
             Sim.delay 0.5;
             (try acquire lm ~owner:2 (tup 1) X
              with Deadlock { victim; _ } -> deadlocked := Some victim);
             release_all lm ~owner:2)));
  Alcotest.(check (option int)) "requester is the victim" (Some 2) !deadlocked

let test_upgrade_deadlock () =
  (* Two owners hold S and both request X: a classic upgrade deadlock. *)
  let failures = ref 0 in
  ignore
    (Sim.run (fun () ->
         let lm = create Sim.scheduler in
         for i = 1 to 2 do
           Sim.spawn (fun () ->
               acquire lm ~owner:i (tup 1) S;
               Sim.delay 0.1;
               (try
                  acquire lm ~owner:i (tup 1) X;
                  Sim.delay 0.1
                with Deadlock _ -> incr failures);
               release_all lm ~owner:i)
         done));
  Alcotest.(check int) "one of the upgraders aborted" 1 !failures

let test_waiting_count () =
  ignore
    (Sim.run (fun () ->
         let lm = create Sim.scheduler in
         Sim.spawn (fun () ->
             acquire lm ~owner:1 (tup 1) X;
             Sim.delay 1.0;
             release_all lm ~owner:1);
         Sim.spawn (fun () ->
             Sim.delay 0.2;
             acquire lm ~owner:2 (tup 1) S;
             release_all lm ~owner:2);
         Sim.spawn (fun () ->
             Sim.delay 0.5;
             Alcotest.(check int) "one waiter mid-flight" 1 (waiting_count lm))))

let test_held_by () =
  let lm = create Ssi_util.Waitq.direct in
  acquire lm ~owner:1 rel IS;
  acquire lm ~owner:2 rel IX;
  let holders = List.sort compare (held_by lm rel) in
  Alcotest.(check bool) "both holders" true (holders = [ (1, IS); (2, IX) ])

let () =
  Alcotest.run "lockmgr"
    [
      ( "matrix",
        [
          Alcotest.test_case "compatibility" `Quick test_compat_matrix;
          Alcotest.test_case "covers" `Quick test_covers;
        ] );
      ( "direct",
        [
          Alcotest.test_case "grant and reacquire" `Quick test_grant_and_reacquire;
          Alcotest.test_case "conflict raises" `Quick test_direct_conflict_raises;
          Alcotest.test_case "try_acquire" `Quick test_try_acquire;
          Alcotest.test_case "release_all" `Quick test_release_all;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "waits for release" `Quick test_blocking_grant;
          Alcotest.test_case "fifo fairness" `Quick test_fifo_no_starvation;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
          Alcotest.test_case "upgrade deadlock" `Quick test_upgrade_deadlock;
          Alcotest.test_case "waiting count" `Quick test_waiting_count;
          Alcotest.test_case "held_by" `Quick test_held_by;
        ] );
    ]
