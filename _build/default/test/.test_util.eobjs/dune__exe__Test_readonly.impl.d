test/test_readonly.ml: Alcotest Array Ssi_engine Ssi_sim Ssi_storage Ssi_util Value
