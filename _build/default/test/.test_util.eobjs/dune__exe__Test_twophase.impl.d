test/test_twophase.ml: Alcotest Array Ssi_engine Ssi_storage Ssi_util Value
