test/test_storage.ml: Alcotest Array Heap List QCheck QCheck_alcotest Schema Ssi_storage Value
