test/test_predlock.mli:
