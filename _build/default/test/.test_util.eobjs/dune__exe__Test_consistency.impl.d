test/test_consistency.ml: Alcotest Array Format Hashtbl List Printf QCheck QCheck_alcotest Ssi_engine Ssi_replication Ssi_sim Ssi_storage Ssi_util Value
