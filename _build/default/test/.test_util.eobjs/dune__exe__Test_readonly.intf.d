test/test_readonly.mli:
