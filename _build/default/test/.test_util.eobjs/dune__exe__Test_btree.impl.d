test/test_btree.ml: Alcotest List Option Printf QCheck QCheck_alcotest Ssi_btree Ssi_storage Value
