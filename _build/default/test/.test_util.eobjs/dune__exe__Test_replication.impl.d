test/test_replication.ml: Alcotest Array Hashtbl List Ssi_engine Ssi_replication Ssi_sim Ssi_storage Value
