test/test_subxact.ml: Alcotest Array Ssi_engine Ssi_storage Value
