test/test_ssi.ml: Alcotest List Printf Ssi_core Ssi_mvcc Ssi_storage String Value
