test/test_subxact.mli:
