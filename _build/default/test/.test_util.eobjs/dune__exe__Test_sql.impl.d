test/test_sql.ml: Alcotest Array List Printf Ssi_core Ssi_engine Ssi_sql Ssi_storage String Value
