test/test_util.ml: Alcotest Array Float List Pqueue QCheck QCheck_alcotest Rng Ssi_util Stats String Tablefmt Waitq
