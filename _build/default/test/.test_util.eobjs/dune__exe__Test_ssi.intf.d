test/test_ssi.mli:
