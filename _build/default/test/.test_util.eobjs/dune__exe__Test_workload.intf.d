test/test_workload.mli:
