test/test_lockmgr.ml: Alcotest Format List Ssi_lockmgr Ssi_sim Ssi_storage Ssi_util Value
