test/test_s2pl.mli:
