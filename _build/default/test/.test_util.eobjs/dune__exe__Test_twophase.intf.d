test/test_twophase.mli:
