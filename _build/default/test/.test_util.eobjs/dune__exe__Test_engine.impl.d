test/test_engine.ml: Alcotest Array Fun List Printf Ssi_engine Ssi_sim Ssi_storage Ssi_util String Value
