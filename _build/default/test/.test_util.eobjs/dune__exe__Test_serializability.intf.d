test/test_serializability.mli:
