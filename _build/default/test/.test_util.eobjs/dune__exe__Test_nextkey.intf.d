test/test_nextkey.mli:
