test/test_anomalies.mli:
