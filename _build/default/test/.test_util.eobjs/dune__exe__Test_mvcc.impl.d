test/test_mvcc.ml: Alcotest Heap List Schema Ssi_mvcc Ssi_storage Value
