test/test_workload.ml: Alcotest Array Driver List Printf Rubis Sibench Ssi_engine Ssi_storage Ssi_util Ssi_workload Tpcc
