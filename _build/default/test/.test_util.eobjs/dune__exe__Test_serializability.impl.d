test/test_serializability.ml: Alcotest List Oracle Printf Ssi_engine Test_oracle
