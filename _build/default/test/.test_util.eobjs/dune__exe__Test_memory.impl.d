test/test_memory.ml: Alcotest Array List Printf Ssi_core Ssi_engine Ssi_storage Value
