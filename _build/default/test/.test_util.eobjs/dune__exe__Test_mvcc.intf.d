test/test_mvcc.mli:
