test/test_predlock.ml: Alcotest List Ssi_core Ssi_storage String Value
