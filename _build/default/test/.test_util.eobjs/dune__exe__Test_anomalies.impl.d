test/test_anomalies.ml: Alcotest Array List Ssi_engine Ssi_storage Value
