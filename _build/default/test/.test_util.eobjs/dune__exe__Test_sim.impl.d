test/test_sim.ml: Alcotest List Rng Ssi_sim Ssi_util Waitq
