test/test_s2pl.ml: Alcotest Array List Ssi_core Ssi_engine Ssi_sim Ssi_storage Value
