open Test_oracle
(* Random-history serializability checking (see oracle.ml).

   - SSI histories must always be serializable (the paper's core claim);
   - S2PL histories must always be serializable (baseline sanity);
   - snapshot-isolation histories must exhibit at least one cycle across
     the seed sweep, which validates that the oracle can detect anomalies
     at all. *)

module E = Ssi_engine.Engine

let seeds = List.init 40 (fun i -> i + 1)

let run_seed ~isolation ?(cfg = Oracle.default_cfg) seed =
  let cfg = { cfg with Oracle.seed } in
  let history = Oracle.run_history ~isolation cfg in
  (history, Oracle.check_serializable history)

let assert_all_serializable ~isolation ?cfg () =
  List.iter
    (fun seed ->
      let history, verdict = run_seed ~isolation ?cfg seed in
      match verdict with
      | Ok () -> ()
      | Error cycle ->
          Alcotest.failf "seed %d produced a non-serializable history:\n%s" seed
            (Oracle.pp_cycle history cycle))
    seeds

let test_ssi_serializable () = assert_all_serializable ~isolation:E.Serializable ()
let test_s2pl_serializable () = assert_all_serializable ~isolation:E.Serializable_2pl ()

let test_ssi_contended () =
  assert_all_serializable ~isolation:E.Serializable ~cfg:Oracle.contended_cfg ()

let test_ssi_summarizing () =
  (* Forcing summarization after every committed transaction must lose no
     conflicts: extra false positives are allowed, missed anomalies are
     not. *)
  assert_all_serializable ~isolation:E.Serializable ~cfg:Oracle.summarizing_cfg ()

let test_s2pl_contended () =
  assert_all_serializable ~isolation:E.Serializable_2pl ~cfg:Oracle.contended_cfg ()

let test_ssi_nextkey () =
  (* Next-key index-gap locking (§5.2.1 future work) must lose no
     anomalies relative to page-granularity locking. *)
  assert_all_serializable ~isolation:E.Serializable ~cfg:Oracle.nextkey_cfg ()

let test_si_shows_anomalies () =
  let cycles =
    List.fold_left
      (fun acc seed ->
        match run_seed ~isolation:E.Repeatable_read seed with
        | _, Ok () -> acc
        | _, Error _ -> acc + 1)
      0 seeds
  in
  Alcotest.(check bool)
    (Printf.sprintf "snapshot isolation produced %d cyclic histories" cycles)
    true (cycles > 0)

let test_read_committed_worse () =
  (* Sanity: the checker also flags READ COMMITTED histories (which are
     weaker than SI). *)
  let cycles =
    List.fold_left
      (fun acc seed ->
        match run_seed ~isolation:E.Read_committed seed with
        | _, Ok () -> acc
        | _, Error _ -> acc + 1)
      0 seeds
  in
  Alcotest.(check bool) "read committed produced cycles" true (cycles > 0)

let () =
  Alcotest.run "serializability"
    [
      ( "oracle",
        [
          Alcotest.test_case "SSI histories are serializable" `Slow test_ssi_serializable;
          Alcotest.test_case "SSI under high contention" `Slow test_ssi_contended;
          Alcotest.test_case "SSI with constant summarization" `Slow test_ssi_summarizing;
          Alcotest.test_case "SSI with next-key gap locking" `Slow test_ssi_nextkey;
          Alcotest.test_case "S2PL histories are serializable" `Slow test_s2pl_serializable;
          Alcotest.test_case "S2PL under high contention" `Slow test_s2pl_contended;
          Alcotest.test_case "SI histories show anomalies" `Slow test_si_shows_anomalies;
          Alcotest.test_case "RC histories show anomalies" `Slow test_read_committed_worse;
        ] );
    ]
