(* Read-only optimizations at the engine level (§4): safe snapshots,
   deferrable transactions, and the snapshot-ordering rule, exercised
   through real data access rather than the manager API. *)

open Ssi_storage
module E = Ssi_engine.Engine
module Sim = Ssi_sim.Sim

let vi i = Value.Int i

let fresh ?(scheduler = Ssi_util.Waitq.direct) () =
  let db = E.create ~scheduler () in
  E.create_table db ~name:"kv" ~cols:[ "k"; "v" ] ~key:"k";
  E.with_txn db (fun t ->
      for k = 0 to 9 do
        E.insert t ~table:"kv" [| vi k; vi 0 |]
      done);
  db

let bump t k = ignore (E.update t ~table:"kv" ~key:(vi k) ~f:(fun r -> [| r.(0); vi 1 |]))

let test_ro_immediately_safe () =
  let db = fresh () in
  let ro = E.begin_txn ~read_only:true db in
  Alcotest.(check bool) "safe from the start" true (E.snapshot_is_safe ro);
  ignore (E.seq_scan ro ~table:"kv" ());
  E.commit ro

let test_ro_safe_after_concurrents_finish () =
  let db = fresh () in
  let rw = E.begin_txn db in
  let ro = E.begin_txn ~read_only:true db in
  Alcotest.(check bool) "not yet safe" false (E.snapshot_is_safe ro);
  ignore (E.read ro ~table:"kv" ~key:(vi 1));
  bump rw 5;
  E.commit rw (* harmless concurrent write: no out-conflict to older txns *);
  Alcotest.(check bool) "safe once concurrents resolve" true (E.snapshot_is_safe ro);
  (* Reads keep working after tracking is dropped. *)
  Alcotest.(check int) "scan still works" 10 (E.row_count ro ~table:"kv");
  E.commit ro

let test_ro_unsafe_snapshot_keeps_tracking () =
  (* Figure 2 shape: rw transaction T2 is concurrent with the RO snapshot
     and commits with a conflict out to T3, which committed before the RO
     snapshot: unsafe. *)
  let db = fresh () in
  let t2 = E.begin_txn db in
  ignore (E.read t2 ~table:"kv" ~key:(vi 1)) (* will conflict with t3's write *);
  let t3 = E.begin_txn db in
  bump t3 1;
  E.commit t3 (* t3 commits before the RO snapshot below *);
  let ro = E.begin_txn ~read_only:true db in
  bump t2 2;
  E.commit t2 (* t2: conflict out to t3, which committed before ro's snapshot *);
  Alcotest.(check bool) "snapshot is unsafe" false (E.snapshot_is_safe ro);
  E.commit ro

let test_ro_abort_resolves_watcher () =
  let db = fresh () in
  let rw = E.begin_txn db in
  let ro = E.begin_txn ~read_only:true db in
  E.abort rw;
  Alcotest.(check bool) "safe after concurrent aborts" true (E.snapshot_is_safe ro);
  E.commit ro

(* ---- The Figure 2 anomaly with a read-only T1, engine level (§4.1) ------------ *)

let test_ro_snapshot_ordering_avoids_false_positive () =
  (* T1 (read-only) takes its snapshot BEFORE T3 commits: even though the
     structure T1 -> T2 -> T3 forms, Theorem 3 says it is safe. *)
  let db = fresh () in
  let t2 = E.begin_txn db in
  ignore (E.read t2 ~table:"kv" ~key:(vi 1));
  let t1 = E.begin_txn ~read_only:true db in
  let t3 = E.begin_txn db in
  bump t3 1 (* t2 -> t3 *);
  E.commit t3 (* T3 commits AFTER t1's snapshot *);
  ignore (E.read t1 ~table:"kv" ~key:(vi 2));
  bump t2 2 (* t1 -> t2 *);
  E.commit t2;
  E.commit t1

let test_deferrable_requires_ro_serializable () =
  let db = fresh () in
  Alcotest.check_raises "needs READ ONLY"
    (Invalid_argument "Engine.begin_txn: DEFERRABLE requires READ ONLY SERIALIZABLE")
    (fun () -> ignore (E.begin_txn ~deferrable:true db))

let test_deferrable_waits_for_concurrents () =
  let granted_at = ref (-1.) in
  ignore
    (Sim.run (fun () ->
         let db = fresh ~scheduler:Sim.scheduler () in
         Sim.spawn (fun () ->
             let rw = E.begin_txn db in
             bump rw 1;
             Sim.delay 2.0;
             E.commit rw);
         Sim.spawn (fun () ->
             Sim.delay 0.5;
             E.with_txn ~read_only:true ~deferrable:true db (fun t ->
                 granted_at := Sim.now ();
                 Alcotest.(check bool) "on a safe snapshot" true (E.snapshot_is_safe t);
                 Alcotest.(check int) "sees the rw commit" 10
                   (E.row_count t ~table:"kv")))));
  Alcotest.(check bool) "waited for the rw transaction" true (!granted_at >= 2.0)

let test_deferrable_retries_unsafe_snapshot () =
  (* The first candidate snapshot is made unsafe by a badly-conflicting
     commit; the deferrable transaction must retry and eventually run. *)
  let ran = ref false in
  ignore
    (Sim.run (fun () ->
         let db = fresh ~scheduler:Sim.scheduler () in
         (* t2 reads key 1 now; t3 commits a write to it immediately — so
            when t2 commits LATER (after the deferrable snapshot), the
            snapshot is unsafe. *)
         let t2 = E.begin_txn db in
         ignore (E.read t2 ~table:"kv" ~key:(vi 1));
         E.with_txn db (fun t3 -> bump t3 1);
         Sim.spawn (fun () ->
             Sim.delay 1.0;
             bump t2 2;
             E.commit t2);
         Sim.spawn (fun () ->
             Sim.delay 0.5;
             E.with_txn ~read_only:true ~deferrable:true db (fun t ->
                 ran := true;
                 Alcotest.(check bool) "safe in the end" true (E.snapshot_is_safe t)))));
  Alcotest.(check bool) "deferrable completed" true !ran

let test_safe_ro_cannot_be_aborted () =
  (* A safe-snapshot read-only transaction reads everything while writers
     churn; it never fails. *)
  ignore
    (Sim.run (fun () ->
         let db = fresh ~scheduler:Sim.scheduler () in
         let ro = E.begin_txn ~read_only:true db in
         Alcotest.(check bool) "safe" true (E.snapshot_is_safe ro);
         Sim.spawn (fun () ->
             for k = 0 to 9 do
               E.with_txn db (fun t -> bump t k);
               Sim.delay 0.01
             done);
         Sim.spawn (fun () ->
             for _ = 1 to 20 do
               ignore (E.row_count ro ~table:"kv");
               Sim.delay 0.01
             done;
             E.commit ro)))

let () =
  Alcotest.run "readonly"
    [
      ( "safe snapshots",
        [
          Alcotest.test_case "immediately safe" `Quick test_ro_immediately_safe;
          Alcotest.test_case "safe after concurrents" `Quick
            test_ro_safe_after_concurrents_finish;
          Alcotest.test_case "unsafe keeps tracking" `Quick
            test_ro_unsafe_snapshot_keeps_tracking;
          Alcotest.test_case "abort resolves watcher" `Quick test_ro_abort_resolves_watcher;
          Alcotest.test_case "snapshot-ordering rule" `Quick
            test_ro_snapshot_ordering_avoids_false_positive;
          Alcotest.test_case "safe RO never aborted" `Quick test_safe_ro_cannot_be_aborted;
        ] );
      ( "deferrable",
        [
          Alcotest.test_case "argument validation" `Quick test_deferrable_requires_ro_serializable;
          Alcotest.test_case "waits for concurrents" `Quick test_deferrable_waits_for_concurrents;
          Alcotest.test_case "retries unsafe snapshots" `Quick
            test_deferrable_retries_unsafe_snapshot;
        ] );
    ]
