(* The SQL front end: lexer, parser, expression evaluation, planner
   behaviour, DML/DDL execution, transaction control (including the
   write-skew scenario driven entirely through SQL, §2.2), savepoints and
   two-phase commit. *)

open Ssi_storage
module E = Ssi_engine.Engine
module Sql = Ssi_sql.Session
module Parser = Ssi_sql.Parser
module Lexer = Ssi_sql.Lexer
module Ast = Ssi_sql.Ast

let session () = Sql.create (E.create ())

let exec s sql =
  match Sql.exec_sql s sql with
  | [ r ] -> r
  | rs -> List.nth rs (List.length rs - 1)

let rows_of s sql =
  match exec s sql with
  | Sql.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected rows"

let ints_of s sql = List.map (fun row -> Value.as_int row.(0)) (rows_of s sql)

let affected s sql =
  match exec s sql with
  | Sql.Affected n -> n
  | _ -> Alcotest.fail "expected affected count"

let seed s =
  ignore (exec s "CREATE TABLE t (k, v, PRIMARY KEY (k))");
  ignore (exec s "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40)")

(* ---- Lexer ------------------------------------------------------------------ *)

let test_lexer () =
  let toks = Lexer.tokenize "SELECT 'it''s', 3.5, x10 <> -2; -- comment" in
  Alcotest.(check int) "token count" 11 (List.length toks);
  Alcotest.(check bool) "string unescaped" true
    (List.exists (function Lexer.String "it's" -> true | _ -> false) toks);
  Alcotest.(check bool) "keyword lowercased" true
    (List.exists (function Lexer.Ident "select" -> true | _ -> false) toks);
  Alcotest.check_raises "unterminated string" (Lexer.Lex_error "unterminated string literal")
    (fun () -> ignore (Lexer.tokenize "'oops"))

(* ---- Parser ------------------------------------------------------------------ *)

let test_parse_select () =
  match Parser.parse "SELECT a, b FROM t WHERE a = 1 AND b > 2 ORDER BY b DESC LIMIT 5" with
  | Ast.Select { proj = Ast.Columns [ "a"; "b" ]; table = "t"; where = Some _;
                 order_by = Some ("b", Ast.Desc); limit = Some 5 } ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_begin_modifiers () =
  match Parser.parse "BEGIN TRANSACTION ISOLATION LEVEL REPEATABLE READ, READ ONLY, DEFERRABLE" with
  | Ast.Begin { isolation = Some Ast.Repeatable_read; read_only = true; deferrable = true } -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_expr_precedence () =
  (* 1 + 2 * 3 = 7 AND NOT FALSE *)
  match Parser.parse_expr "1 + 2 * 3 = 7 and not false" with
  | Ast.And (Ast.Cmp (Ast.Eq, Ast.Arith (Ast.Add, _, Ast.Arith (Ast.Mul, _, _)), _), Ast.Not _)
    ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_errors () =
  Alcotest.(check bool) "garbage rejected" true
    (match Parser.parse "FLY ME TO THE MOON" with
    | exception Parser.Parse_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "trailing input rejected" true
    (match Parser.parse "COMMIT COMMIT" with
    | exception Parser.Parse_error _ -> true
    | _ -> false)

let test_parse_script () =
  Alcotest.(check int) "three statements" 3
    (List.length (Parser.parse_script "BEGIN; COMMIT; ROLLBACK;"))

(* ---- Execution ----------------------------------------------------------------- *)

let test_crud_via_sql () =
  let s = session () in
  seed s;
  Alcotest.(check (list int)) "select all" [ 1; 2; 3; 4 ] (ints_of s "SELECT k FROM t ORDER BY k");
  Alcotest.(check int) "update" 2 (affected s "UPDATE t SET v = v + 1 WHERE k <= 2");
  Alcotest.(check (list int)) "updated values" [ 11; 21 ]
    (ints_of s "SELECT v FROM t WHERE k <= 2 ORDER BY k");
  Alcotest.(check int) "delete" 1 (affected s "DELETE FROM t WHERE v = 30");
  Alcotest.(check (list int)) "remaining" [ 1; 2; 4 ] (ints_of s "SELECT k FROM t ORDER BY k")

let test_aggregates () =
  let s = session () in
  seed s;
  Alcotest.(check (list int)) "count" [ 4 ] (ints_of s "SELECT COUNT(*) FROM t");
  Alcotest.(check (list int)) "sum" [ 100 ] (ints_of s "SELECT SUM(v) FROM t");
  Alcotest.(check (list int)) "min" [ 10 ] (ints_of s "SELECT MIN(v) FROM t");
  Alcotest.(check (list int)) "max where" [ 20 ]
    (ints_of s "SELECT MAX(v) FROM t WHERE k < 3")

let test_planner_uses_indexes () =
  (* Not directly observable from results, so observe it through SSI lock
     footprints: a point read must not take a relation-level SIREAD
     lock, while an unindexed predicate scan must. *)
  let s = session () in
  seed s;
  ignore (exec s "BEGIN");
  ignore (rows_of s "SELECT * FROM t WHERE k = 2");
  let db = Sql.db s in
  let locks = Ssi_core.Ssi.locks (E.ssi db) in
  let total_before = Ssi_core.Predlock.total_lock_count locks in
  ignore (rows_of s "SELECT * FROM t WHERE v = 20") (* unindexed: seq scan *);
  Alcotest.(check bool) "seq scan added a relation lock" true
    (Ssi_core.Predlock.total_lock_count locks > total_before);
  ignore (exec s "COMMIT")

let test_index_scan_path () =
  let s = session () in
  ignore (exec s "CREATE TABLE items (id, cat, PRIMARY KEY (id))");
  ignore (exec s "CREATE INDEX items_cat ON items (cat)");
  ignore (exec s "INSERT INTO items VALUES (1, 5), (2, 5), (3, 7)");
  Alcotest.(check (list int)) "by category" [ 1; 2 ]
    (ints_of s "SELECT id FROM items WHERE cat = 5 ORDER BY id");
  Alcotest.(check (list int)) "range" [ 3 ]
    (ints_of s "SELECT id FROM items WHERE cat > 5 AND cat < 9")

let test_errors () =
  let s = session () in
  seed s;
  Alcotest.(check bool) "unknown table" true
    (match exec s "SELECT * FROM nope" with
    | exception Sql.Sql_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "unknown column" true
    (match exec s "SELECT zz FROM t" with
    | exception Sql.Sql_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "duplicate key" true
    (match exec s "INSERT INTO t VALUES (1, 1)" with
    | exception Sql.Sql_error _ -> true
    | _ -> false)

(* ---- Transactions over SQL -------------------------------------------------------- *)

let test_explicit_transaction () =
  let s = session () in
  seed s;
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE t SET v = 0 WHERE k = 1");
  ignore (exec s "ROLLBACK");
  Alcotest.(check (list int)) "rolled back" [ 10 ] (ints_of s "SELECT v FROM t WHERE k = 1");
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE t SET v = 0 WHERE k = 1");
  ignore (exec s "COMMIT");
  Alcotest.(check (list int)) "committed" [ 0 ] (ints_of s "SELECT v FROM t WHERE k = 1")

let test_isolation_levels_via_sql () =
  let db = E.create () in
  let s1 = Sql.create db and s2 = Sql.create db in
  seed s1;
  ignore (exec s1 "BEGIN ISOLATION LEVEL REPEATABLE READ");
  Alcotest.(check (list int)) "before" [ 10 ] (ints_of s1 "SELECT v FROM t WHERE k = 1");
  ignore (exec s2 "UPDATE t SET v = 99 WHERE k = 1");
  Alcotest.(check (list int)) "repeatable" [ 10 ] (ints_of s1 "SELECT v FROM t WHERE k = 1");
  ignore (exec s1 "COMMIT");
  let s3 = Sql.create db in
  ignore (exec s3 "BEGIN ISOLATION LEVEL READ COMMITTED");
  Alcotest.(check (list int)) "rc sees" [ 99 ] (ints_of s3 "SELECT v FROM t WHERE k = 1");
  ignore (exec s2 "UPDATE t SET v = 100 WHERE k = 1");
  Alcotest.(check (list int)) "rc sees newer" [ 100 ] (ints_of s3 "SELECT v FROM t WHERE k = 1");
  ignore (exec s3 "COMMIT")

let test_write_skew_via_sql () =
  (* The paper's §2.2 scenario as two psql-style sessions: SERIALIZABLE
     (the default) prevents the write skew that REPEATABLE READ allows. *)
  let run level =
    let db = E.create () in
    let s0 = Sql.create db in
    ignore (exec s0 "CREATE TABLE doctors (name, oncall, PRIMARY KEY (name))");
    ignore (exec s0 "INSERT INTO doctors VALUES ('alice', true), ('bob', true)");
    let s1 = Sql.create db and s2 = Sql.create db in
    let go s me =
      ignore (exec s (Printf.sprintf "BEGIN ISOLATION LEVEL %s" level));
      let oncall =
        match rows_of s "SELECT COUNT(*) FROM doctors WHERE oncall = true" with
        | [ [| Value.Int n |] ] -> n
        | _ -> Alcotest.fail "bad count"
      in
      if oncall >= 2 then
        ignore (exec s (Printf.sprintf "UPDATE doctors SET oncall = false WHERE name = '%s'" me))
    in
    go s1 "alice";
    go s2 "bob";
    let commit s = match exec s "COMMIT" with
      | Sql.Message "COMMIT" -> true
      | _ -> false
      | exception Sql.Sql_error _ -> false
    in
    let ok1 = commit s1 and ok2 = commit s2 in
    let remaining =
      match rows_of s0 "SELECT COUNT(*) FROM doctors WHERE oncall = true" with
      | [ [| Value.Int n |] ] -> n
      | _ -> -1
    in
    (ok1, ok2, remaining)
  in
  let ok1, ok2, remaining = run "REPEATABLE READ" in
  Alcotest.(check bool) "SI: both commit" true (ok1 && ok2);
  Alcotest.(check int) "SI: invariant broken" 0 remaining;
  let ok1, ok2, remaining = run "SERIALIZABLE" in
  Alcotest.(check bool) "SSI: one fails" true (ok1 <> ok2);
  Alcotest.(check int) "SSI: invariant holds" 1 remaining

let test_failed_transaction_state () =
  let db = E.create () in
  let s1 = Sql.create db and s2 = Sql.create db in
  seed s1;
  ignore (exec s1 "BEGIN");
  ignore (rows_of s1 "SELECT * FROM t WHERE k = 1");
  ignore (exec s2 "UPDATE t SET v = 5 WHERE k = 1");
  (* first-updater-wins: s1's update now fails... *)
  (match exec s1 "UPDATE t SET v = 6 WHERE k = 1" with
  | exception Sql.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected serialization failure");
  (* ...and the transaction is in the aborted state until ROLLBACK. *)
  (match exec s1 "SELECT * FROM t" with
  | exception Sql.Sql_error m ->
      Alcotest.(check bool) "aborted-state message" true
        (String.length m > 0)
  | _ -> Alcotest.fail "statements must be rejected");
  (match exec s1 "COMMIT" with
  | Sql.Message m -> Alcotest.(check bool) "commit reports rollback" true
      (String.length m >= 8)
  | _ -> Alcotest.fail "commit of failed txn");
  Alcotest.(check bool) "session usable again" true (ints_of s1 "SELECT COUNT(*) FROM t" = [ 4 ])

let test_savepoints_via_sql () =
  let s = session () in
  seed s;
  ignore (exec s "BEGIN");
  ignore (exec s "SAVEPOINT sp");
  ignore (exec s "UPDATE t SET v = 0 WHERE k = 1");
  ignore (exec s "ROLLBACK TO SAVEPOINT sp");
  ignore (exec s "COMMIT");
  Alcotest.(check (list int)) "subxact undone" [ 10 ] (ints_of s "SELECT v FROM t WHERE k = 1")

let test_two_phase_commit_via_sql () =
  let db = E.create () in
  let s1 = Sql.create db and s2 = Sql.create db in
  seed s1;
  ignore (exec s1 "BEGIN");
  ignore (exec s1 "UPDATE t SET v = 1000 WHERE k = 4");
  ignore (exec s1 "PREPARE TRANSACTION 'gid1'");
  Alcotest.(check (list int)) "invisible while prepared" [ 40 ]
    (ints_of s2 "SELECT v FROM t WHERE k = 4");
  ignore (exec s2 "COMMIT PREPARED 'gid1'");
  Alcotest.(check (list int)) "visible after" [ 1000 ] (ints_of s2 "SELECT v FROM t WHERE k = 4")

let test_show_locks_and_conflicts () =
  let db = E.create () in
  let s1 = Sql.create db and s2 = Sql.create db in
  seed s1;
  ignore (exec s1 "BEGIN");
  ignore (rows_of s1 "SELECT * FROM t WHERE k = 1");
  let lock_rows = rows_of s1 "SHOW LOCKS" in
  Alcotest.(check bool) "lock table non-empty" true (List.length lock_rows > 0);
  (* s2 writes what s1 read: the conflict appears in SHOW CONFLICTS. *)
  ignore (exec s2 "UPDATE t SET v = 0 WHERE k = 1");
  let conflict_rows = rows_of s1 "SHOW CONFLICTS" in
  Alcotest.(check bool) "conflict edge visible" true
    (List.exists
       (fun row -> Value.as_string row.(4) <> "" || Value.as_string row.(3) <> "")
       conflict_rows);
  ignore (exec s1 "COMMIT")

let test_read_only_and_render () =
  let s = session () in
  seed s;
  ignore (exec s "BEGIN READ ONLY");
  (match exec s "UPDATE t SET v = 0 WHERE k = 1" with
  | exception Sql.Sql_error _ -> ()
  | _ -> Alcotest.fail "read-only must reject writes");
  ignore (exec s "ROLLBACK");
  let rendered = Sql.render (exec s "SELECT k FROM t WHERE k = 1") in
  Alcotest.(check bool) "render contains value" true
    (String.length rendered > 0
    && String.split_on_char '\n' rendered |> List.exists (fun l -> String.trim l = "1"))

let () =
  Alcotest.run "sql"
    [
      ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer ]);
      ( "parser",
        [
          Alcotest.test_case "select" `Quick test_parse_select;
          Alcotest.test_case "begin modifiers" `Quick test_parse_begin_modifiers;
          Alcotest.test_case "precedence" `Quick test_parse_expr_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "script" `Quick test_parse_script;
        ] );
      ( "execution",
        [
          Alcotest.test_case "crud" `Quick test_crud_via_sql;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "planner lock footprint" `Quick test_planner_uses_indexes;
          Alcotest.test_case "secondary index path" `Quick test_index_scan_path;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "begin/commit/rollback" `Quick test_explicit_transaction;
          Alcotest.test_case "isolation levels" `Quick test_isolation_levels_via_sql;
          Alcotest.test_case "write skew via SQL" `Quick test_write_skew_via_sql;
          Alcotest.test_case "failed transaction state" `Quick test_failed_transaction_state;
          Alcotest.test_case "savepoints" `Quick test_savepoints_via_sql;
          Alcotest.test_case "two-phase commit" `Quick test_two_phase_commit_via_sql;
          Alcotest.test_case "read only + render" `Quick test_read_only_and_render;
          Alcotest.test_case "show locks/conflicts" `Quick test_show_locks_and_conflicts;
        ] );
    ]
