(* The SSI lock manager: SIREAD lock bookkeeping, granularity promotion,
   conflict lookup order, summarization, DDL transfers (§5.2, §6.2). *)

open Ssi_storage
module Predlock = Ssi_core.Predlock
open Predlock

let vi i = Value.Int i

let small_config =
  { max_tuple_locks_per_page = 2; max_page_locks_per_relation = 2; max_page_locks_per_index = 2 }

let test_tuple_lock_and_lookup () =
  let t = create () in
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  let r = readers_for_write t ~rel:"r" ~key:(vi 1) ~page:0 in
  Alcotest.(check (list int)) "reader found" [ 1 ] r.xids;
  let r2 = readers_for_write t ~rel:"r" ~key:(vi 2) ~page:0 in
  Alcotest.(check (list int)) "other key clear" [] r2.xids

let test_page_lock_covers_tuples () =
  let t = create () in
  lock_page t ~owner:1 ~rel:"r" ~page:3;
  let r = readers_for_write t ~rel:"r" ~key:(vi 99) ~page:3 in
  Alcotest.(check (list int)) "page lock covers any tuple on it" [ 1 ] r.xids

let test_relation_lock_covers_all () =
  let t = create () in
  lock_relation t ~owner:1 ~rel:"r";
  let r = readers_for_write t ~rel:"r" ~key:(vi 5) ~page:77 in
  Alcotest.(check (list int)) "relation lock covers everything" [ 1 ] r.xids

let test_promotion_tuple_to_page () =
  let t = create ~config:small_config () in
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 2) ~page:0;
  Alcotest.(check bool) "no page lock yet" false (holds t ~owner:1 (Page ("r", 0)));
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 3) ~page:0;
  Alcotest.(check bool) "promoted to page" true (holds t ~owner:1 (Page ("r", 0)));
  Alcotest.(check bool) "tuple locks dropped" false (holds t ~owner:1 (Tuple ("r", vi 1)));
  (* Coverage is preserved. *)
  let r = readers_for_write t ~rel:"r" ~key:(vi 1) ~page:0 in
  Alcotest.(check (list int)) "still covered" [ 1 ] r.xids;
  Alcotest.(check bool) "promotions counted" true (promotions t > 0)

let test_promotion_page_to_relation () =
  let t = create ~config:small_config () in
  lock_page t ~owner:1 ~rel:"r" ~page:0;
  lock_page t ~owner:1 ~rel:"r" ~page:1;
  lock_page t ~owner:1 ~rel:"r" ~page:2;
  Alcotest.(check bool) "promoted to relation" true (holds t ~owner:1 (Relation "r"));
  Alcotest.(check bool) "page locks dropped" false (holds t ~owner:1 (Page ("r", 0)));
  Alcotest.(check int) "single lock left" 1 (owner_lock_count t 1)

let test_promotion_index () =
  let t = create ~config:small_config () in
  lock_index_page t ~owner:1 ~index:"i" ~page:0;
  lock_index_page t ~owner:1 ~index:"i" ~page:1;
  lock_index_page t ~owner:1 ~index:"i" ~page:2;
  Alcotest.(check bool) "whole-index lock" true (holds t ~owner:1 (Index_rel "i"));
  let r = readers_for_index_insert t ~index:"i" ~page:9 in
  Alcotest.(check (list int)) "covers all pages" [ 1 ] r.xids

let test_no_finer_lock_under_coarser () =
  let t = create () in
  lock_relation t ~owner:1 ~rel:"r";
  lock_page t ~owner:1 ~rel:"r" ~page:0;
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  Alcotest.(check int) "only the relation lock" 1 (owner_lock_count t 1)

let test_unlock_tuple () =
  let t = create () in
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  unlock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1);
  let r = readers_for_write t ~rel:"r" ~key:(vi 1) ~page:0 in
  Alcotest.(check (list int)) "dropped" [] r.xids;
  (* Dropping a promoted-away tuple lock is a no-op, not an error. *)
  lock_page t ~owner:1 ~rel:"r" ~page:0;
  unlock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1);
  Alcotest.(check bool) "page lock untouched" true (holds t ~owner:1 (Page ("r", 0)))

let test_multiple_owners () =
  let t = create () in
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  lock_tuple t ~owner:2 ~rel:"r" ~key:(vi 1) ~page:0;
  lock_relation t ~owner:3 ~rel:"r";
  let r = readers_for_write t ~rel:"r" ~key:(vi 1) ~page:0 in
  (match r.xids with
  | 3 :: rest ->
      Alcotest.(check (list int)) "tuple readers follow" [ 1; 2 ] (List.sort compare rest)
  | other ->
      Alcotest.failf "expected relation reader first, got [%s]"
        (String.concat ";" (List.map string_of_int other)))

let test_release_owner () =
  let t = create () in
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  lock_relation t ~owner:1 ~rel:"s";
  release_owner t 1;
  Alcotest.(check int) "no locks" 0 (total_lock_count t);
  Alcotest.(check int) "owner cleared" 0 (owner_lock_count t 1)

let test_summarize_owner () =
  let t = create () in
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  summarize_owner t 1 ~cseq:42;
  let r = readers_for_write t ~rel:"r" ~key:(vi 1) ~page:0 in
  Alcotest.(check (list int)) "no named reader" [] r.xids;
  Alcotest.(check (option int)) "dummy owner with cseq" (Some 42) r.old_committed;
  (* A later summarized holder raises the recorded cseq. *)
  lock_tuple t ~owner:2 ~rel:"r" ~key:(vi 1) ~page:0;
  summarize_owner t 2 ~cseq:50;
  let r = readers_for_write t ~rel:"r" ~key:(vi 1) ~page:0 in
  Alcotest.(check (option int)) "latest cseq" (Some 50) r.old_committed

let test_cleanup_old_committed () =
  let t = create () in
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  summarize_owner t 1 ~cseq:10;
  cleanup_old_committed t ~before:10;
  let r = readers_for_write t ~rel:"r" ~key:(vi 1) ~page:0 in
  Alcotest.(check (option int)) "not yet stale (cseq = horizon)" (Some 10) r.old_committed;
  cleanup_old_committed t ~before:11;
  let r = readers_for_write t ~rel:"r" ~key:(vi 1) ~page:0 in
  Alcotest.(check (option int)) "cleaned" None r.old_committed;
  Alcotest.(check int) "table empty" 0 (total_lock_count t)

let test_index_page_split_copies () =
  let t = create () in
  lock_index_page t ~owner:1 ~index:"i" ~page:0;
  lock_index_page t ~owner:2 ~index:"i" ~page:0;
  summarize_owner t 2 ~cseq:7;
  on_index_page_split t ~index:"i" ~old_page:0 ~new_page:5;
  let r = readers_for_index_insert t ~index:"i" ~page:5 in
  Alcotest.(check (list int)) "named owner copied" [ 1 ] r.xids;
  Alcotest.(check (option int)) "dummy copied" (Some 7) r.old_committed;
  let r0 = readers_for_index_insert t ~index:"i" ~page:0 in
  Alcotest.(check (list int)) "old page untouched" [ 1 ] r0.xids

let test_ddl_promote_relation () =
  let t = create () in
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  lock_page t ~owner:2 ~rel:"r" ~page:1;
  lock_tuple t ~owner:3 ~rel:"s" ~key:(vi 1) ~page:0;
  summarize_owner t 3 ~cseq:5;
  lock_tuple t ~owner:4 ~rel:"r" ~key:(vi 9) ~page:2;
  summarize_owner t 4 ~cseq:6;
  promote_relation t ~rel:"r";
  Alcotest.(check bool) "owner1 promoted" true (holds t ~owner:1 (Relation "r"));
  Alcotest.(check bool) "owner2 promoted" true (holds t ~owner:2 (Relation "r"));
  Alcotest.(check bool) "fine locks gone" false (holds t ~owner:1 (Tuple ("r", vi 1)));
  let r = readers_for_write t ~rel:"r" ~key:(vi 1234) ~page:99 in
  Alcotest.(check bool) "everything covered" true
    (List.sort compare r.xids = [ 1; 2 ] && r.old_committed = Some 6);
  (* Other relations untouched. *)
  let s = readers_for_write t ~rel:"s" ~key:(vi 1) ~page:0 in
  Alcotest.(check (option int)) "relation s dummy kept" (Some 5) s.old_committed

let test_ddl_drop_index () =
  let t = create () in
  lock_index_page t ~owner:1 ~index:"i" ~page:0;
  lock_index_rel t ~owner:2 ~index:"i";
  lock_index_page t ~owner:3 ~index:"i" ~page:1;
  summarize_owner t 3 ~cseq:9;
  drop_index_to_relation t ~index:"i" ~heap_rel:"r";
  Alcotest.(check bool) "owner1 got relation lock" true (holds t ~owner:1 (Relation "r"));
  Alcotest.(check bool) "owner2 got relation lock" true (holds t ~owner:2 (Relation "r"));
  let r = readers_for_write t ~rel:"r" ~key:(vi 1) ~page:0 in
  Alcotest.(check (option int)) "dummy transferred" (Some 9) r.old_committed;
  let idx = readers_for_index_insert t ~index:"i" ~page:0 in
  Alcotest.(check (list int)) "index locks gone" [] idx.xids

let test_counts () =
  let t = create () in
  lock_tuple t ~owner:1 ~rel:"r" ~key:(vi 1) ~page:0;
  lock_tuple t ~owner:2 ~rel:"r" ~key:(vi 1) ~page:0;
  Alcotest.(check int) "two holdings on one target" 2 (total_lock_count t);
  Alcotest.(check int) "owner count" 1 (owner_lock_count t 1)

let () =
  Alcotest.run "predlock"
    [
      ( "basics",
        [
          Alcotest.test_case "tuple lock lookup" `Quick test_tuple_lock_and_lookup;
          Alcotest.test_case "page covers tuples" `Quick test_page_lock_covers_tuples;
          Alcotest.test_case "relation covers all" `Quick test_relation_lock_covers_all;
          Alcotest.test_case "multiple owners, coarse first" `Quick test_multiple_owners;
          Alcotest.test_case "unlock tuple" `Quick test_unlock_tuple;
          Alcotest.test_case "release owner" `Quick test_release_owner;
          Alcotest.test_case "counts" `Quick test_counts;
        ] );
      ( "promotion",
        [
          Alcotest.test_case "tuple to page" `Quick test_promotion_tuple_to_page;
          Alcotest.test_case "page to relation" `Quick test_promotion_page_to_relation;
          Alcotest.test_case "index pages" `Quick test_promotion_index;
          Alcotest.test_case "coarser subsumes finer" `Quick test_no_finer_lock_under_coarser;
        ] );
      ( "summarization",
        [
          Alcotest.test_case "summarize owner" `Quick test_summarize_owner;
          Alcotest.test_case "cleanup" `Quick test_cleanup_old_committed;
        ] );
      ( "structure",
        [
          Alcotest.test_case "page split copies locks" `Quick test_index_page_split_copies;
          Alcotest.test_case "table rewrite promotes" `Quick test_ddl_promote_relation;
          Alcotest.test_case "index drop transfers" `Quick test_ddl_drop_index;
        ] );
    ]
